package trustnet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

// snapshotVersion guards the wire format; bump it whenever the serialized
// state's shape changes incompatibly.
//
// v2: the mechanism states went sparse — eigentrust's LocalTrustState
// dropped the dense Sat/Unsat matrices for an Entries list + Dirty rows,
// powertrust gained DirtyRows — so v1 blobs would gob-decode into empty
// trust matrices if accepted.
const snapshotVersion = 2

// Snapshot is a complete, serializable checkpoint of an Engine's mutable
// state: every random-stream position (the workload planner, per-gatherer
// disclosure draws, mechanism-internal streams), the trust model and §3
// coupling state, the privacy ledger, the reputation mechanism, and the
// recorded epoch history.
//
// A Snapshot restores only into an Engine built from the identical scenario
// options (same seed, peers, graph, mix, mechanism, policy). It
// intentionally does not carry the scenario configuration itself: options
// are code (factories, closures), and re-running them is what regenerates
// the deterministic scenario structure a snapshot omits. Shard count is the
// one explicit exception — restore-then-run is bit-for-bit identical to the
// uninterrupted run at every shard count.
type Snapshot struct {
	Version int
	// Peers and Mechanism identify the scenario shape for early mismatch
	// errors; Epoch is the number of completed epochs at capture time.
	Peers     int
	Mechanism string
	Epoch     int
	State     core.DynamicsState
}

// Snapshot captures the engine's full mutable state. The scenario's
// mechanism must support snapshots (all built-in mechanisms do).
func (e *Engine) Snapshot() (*Snapshot, error) {
	st, err := e.dyn.State()
	if err != nil {
		return nil, fmt.Errorf("trustnet: snapshot: %w", err)
	}
	return &Snapshot{
		Version:   snapshotVersion,
		Peers:     e.Peers(),
		Mechanism: e.mech.Name(),
		Epoch:     e.dyn.EpochIndex(),
		State:     st,
	}, nil
}

// Restore overwrites the engine's mutable state with the snapshot's. The
// engine must have been built from the identical scenario options the
// snapshotted engine was (shard count excepted); mismatches that are
// detectable — population size, mechanism, vector shapes — are errors.
func (e *Engine) Restore(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("trustnet: restore: nil snapshot")
	}
	if s.Version != snapshotVersion {
		return fmt.Errorf("trustnet: restore: snapshot version mismatch (got %d, want %d)", s.Version, snapshotVersion)
	}
	if s.Peers != e.Peers() {
		return fmt.Errorf("trustnet: restore: snapshot of %d peers into engine of %d", s.Peers, e.Peers())
	}
	if s.Mechanism != e.mech.Name() {
		return fmt.Errorf("trustnet: restore: snapshot of mechanism %q into engine running %q", s.Mechanism, e.mech.Name())
	}
	if err := e.dyn.Restore(s.State); err != nil {
		return fmt.Errorf("trustnet: restore: %w", err)
	}
	return nil
}

// RestoreFromFile loads the snapshot file at path and restores the engine
// from it — the shared resume path of cmd/trustsim and cmd/trustnetd, so the
// version-mismatch and scenario-mismatch checks live (and are tested) in one
// place.
func (e *Engine) RestoreFromFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trustnet: restore snapshot: %w", err)
	}
	defer f.Close()
	s, err := DecodeSnapshot(f)
	if err != nil {
		return err
	}
	return e.Restore(s)
}

// Encode writes the snapshot to w in the versioned binary (gob) format.
func (s *Snapshot) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("trustnet: encode snapshot: %w", err)
	}
	return nil
}

// snapshotHeader is the version-probe target of DecodeSnapshot: gob matches
// fields by name and structurally skips the rest of the stream, so the
// Version of any generation's snapshot decodes into it even when the full
// State no longer would.
type snapshotHeader struct {
	Version int
}

// DecodeSnapshot reads a snapshot previously written by Encode. The version
// is checked before the state is decoded, so feeding a snapshot from an
// older (or newer) format generation reports a clear version mismatch
// instead of surfacing a raw gob decode failure from deep inside the state.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trustnet: decode snapshot: %w", err)
	}
	var hdr snapshotHeader
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trustnet: decode snapshot: %w", err)
	}
	if hdr.Version != snapshotVersion {
		return nil, fmt.Errorf("trustnet: decode snapshot: snapshot version mismatch (got %d, want %d)", hdr.Version, snapshotVersion)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("trustnet: decode snapshot: %w", err)
	}
	return &s, nil
}
