package trustnet

import "repro/internal/workload"

// WorkloadEngine exposes the engine's underlying workload engine — the
// attachment point of the cluster layer (internal/cluster), whose master
// installs its scatter delegate, SpMV delegate and report observer there.
// It is not a general-purpose escape hatch: mutating the workload engine
// directly bypasses the facade's epoch-boundary read/write concordance.
func (e *Engine) WorkloadEngine() *workload.Engine { return e.dyn.Engine() }
