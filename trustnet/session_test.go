package trustnet

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"testing"
)

// sessionScenario is the shared scenario of the session tests: coupled
// dynamics, a mixed adversary population, gating and activity skew, so that
// every engine subsystem (including the colluder clique and the ledger) is
// exercised.
func sessionScenario(seed uint64, extra ...Option) []Option {
	opts := []Option{
		WithPeers(60),
		WithRNGSeed(seed),
		WithMix(Mix{
			Fractions: map[Class]float64{
				Honest:    0.6,
				Malicious: 0.2,
				Selfish:   0.05,
				Traitor:   0.05,
				Colluder:  0.1,
			},
			ForceHonest: []int{0, 1, 2},
		}),
		WithPrivacyPolicy(PrivacyPolicy{Disclosure: 0.8, TrustGate: 0.1}),
		WithCoupling(true),
		WithEpochRounds(4),
		WithRecomputeEvery(2),
		WithActivitySkew(0.8),
	}
	return append(opts, extra...)
}

// histBytes gob-encodes a history so comparisons are bit-exact on every
// float64 (== would mis-handle equal NaNs).
func histBytes(t *testing.T, h []EpochStats) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		t.Fatalf("encode history: %v", err)
	}
	return buf.Bytes()
}

func TestSessionMatchesRun(t *testing.T) {
	batch, err := New(sessionScenario(7)...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.Run(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := New(sessionScenario(7)...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := stream.Session(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var got []EpochStats
	for i := 0; i < 6; i++ {
		st, err := s.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if st.Epoch != i {
			t.Fatalf("epoch %d reported as %d", i, st.Epoch)
		}
		got = append(got, st)
	}
	if !bytes.Equal(histBytes(t, want), histBytes(t, got)) {
		t.Fatal("streamed history differs from batch Run history on equal seeds")
	}
	if s.Delivered() != 6 {
		t.Fatalf("Delivered = %d, want 6", s.Delivered())
	}
}

func TestSessionEpochsIterator(t *testing.T) {
	eng, err := New(sessionScenario(11)...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Session(context.Background(), WithMaxEpochs(4))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for st, err := range s.Epochs() {
		if err != nil {
			t.Fatalf("epoch %d: %v", n, err)
		}
		if st.Epoch != n {
			t.Fatalf("epoch index %d, want %d", st.Epoch, n)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("iterator yielded %d epochs, want 4", n)
	}
	if _, err := s.Next(); !errors.Is(err, ErrSessionDone) {
		t.Fatalf("Next after budget = %v, want ErrSessionDone", err)
	}

	// Breaking out of the range keeps the session usable for more pulls.
	s2, err := eng.Session(context.Background(), WithMaxEpochs(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range s2.Epochs() {
		if err != nil {
			t.Fatal(err)
		}
		break
	}
	if _, err := s2.Next(); err != nil {
		t.Fatalf("Next after break: %v", err)
	}
	if s2.Delivered() != 2 {
		t.Fatalf("Delivered = %d, want 2", s2.Delivered())
	}
}

func TestSessionObserversDoNotPerturb(t *testing.T) {
	plain, err := New(sessionScenario(13)...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}

	observed, err := New(sessionScenario(13)...)
	if err != nil {
		t.Fatal(err)
	}
	epochs, rounds := 0, 0
	s, err := observed.Session(context.Background(),
		WithMaxEpochs(5),
		OnEpoch(func(EpochStats) { epochs++ }),
		OnRound(func(RoundStats) { rounds++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range s.Epochs() {
		if err != nil {
			t.Fatal(err)
		}
	}
	if epochs != 5 {
		t.Fatalf("OnEpoch fired %d times, want 5", epochs)
	}
	if rounds != 5*4 {
		t.Fatalf("OnRound fired %d times, want %d", rounds, 5*4)
	}
	if !bytes.Equal(histBytes(t, want), histBytes(t, observed.History())) {
		t.Fatal("observers perturbed the epoch history")
	}
}

func TestSessionContextCancel(t *testing.T) {
	eng, err := New(sessionScenario(17)...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s, err := eng.Session(ctx, WithMaxEpochs(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := s.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
	// The error sticks.
	if _, err := s.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("second Next after cancel = %v, want context.Canceled", err)
	}
}

// TestSessionCancelMidEpoch pins the between-rounds cancellation check: a
// context cancelled while an epoch is in flight stops the session within a
// round, instead of stalling shutdown behind the rest of a large epoch.
func TestSessionCancelMidEpoch(t *testing.T) {
	eng, err := New(sessionScenario(23, WithEpochRounds(1000))...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rounds := 0
	s, err := eng.Session(ctx, WithMaxEpochs(1), OnRound(func(RoundStats) {
		rounds++
		if rounds == 2 {
			cancel()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next with mid-epoch cancel = %v, want context.Canceled", err)
	}
	if rounds >= 1000 {
		t.Fatalf("epoch ran to completion (%d rounds) despite cancellation", rounds)
	}
	// The error sticks, like every other session failure.
	if _, err := s.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after mid-epoch cancel = %v, want context.Canceled", err)
	}
}

func TestLeaveJoinWaveChangesLoad(t *testing.T) {
	eng, err := New(sessionScenario(19)...)
	if err != nil {
		t.Fatal(err)
	}
	leavers := make([]int, 0, 30)
	for u := 20; u < 50; u++ {
		leavers = append(leavers, u)
	}
	sched := Schedule{}.
		At(2, LeaveWave{Users: leavers}).
		At(4, JoinWave{Users: leavers})

	perEpoch := make(map[int]int) // epoch -> interactions
	activeAt := make(map[int]int) // epoch -> present peers while it ran
	epoch := 0
	s, err := eng.Session(context.Background(),
		WithMaxEpochs(6),
		WithSchedule(sched),
		OnEpoch(func(st EpochStats) { activeAt[st.Epoch] = eng.ActivePeers(); epoch = st.Epoch + 1 }),
		OnRound(func(rs RoundStats) { perEpoch[epoch] += rs.Interactions }),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range s.Epochs() {
		if err != nil {
			t.Fatal(err)
		}
	}
	if activeAt[1] != 60 || activeAt[2] != 30 || activeAt[5] != 60 {
		t.Fatalf("active-peer trajectory %v, want 60 before, 30 during, 60 after", activeAt)
	}
	// Half the population gone: epochs 2-3 must carry clearly less load than
	// epochs 0-1, and the load must recover after the join wave.
	before := perEpoch[0] + perEpoch[1]
	during := perEpoch[2] + perEpoch[3]
	after := perEpoch[4] + perEpoch[5]
	if during >= before*3/4 {
		t.Fatalf("leave wave did not reduce load: before=%d during=%d", before, during)
	}
	if after <= during {
		t.Fatalf("join wave did not restore load: during=%d after=%d", during, after)
	}
}

func TestBehaviorChangeActivatesAdversaries(t *testing.T) {
	eng, err := New(
		WithPeers(60),
		WithRNGSeed(23),
		WithCoupling(true),
		WithEpochRounds(4),
		WithRecomputeEvery(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	// All honest; at epoch 3, half the population turns malicious.
	turned := make([]int, 0, 30)
	for u := 30; u < 60; u++ {
		turned = append(turned, u)
	}
	s, err := eng.Session(context.Background(),
		WithMaxEpochs(6),
		WithSchedule(Schedule{}.At(3, BehaviorChange{Users: turned, Class: Malicious})),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range s.Epochs() {
		if err != nil {
			t.Fatal(err)
		}
	}
	hist := eng.History()
	if hist[2].BadRate != 0 {
		// All-honest epochs deliver good-quality service (quality >= 0.5
		// given default noise), so any bad service means the swap leaked.
		t.Fatalf("bad service before activation: %v", hist[2].BadRate)
	}
	if hist[3].BadRate <= 0.1 {
		t.Fatalf("adversary activation had no effect: bad rate %v", hist[3].BadRate)
	}
	classes := eng.Classes()
	for _, u := range turned {
		if classes[u] != Malicious {
			t.Fatalf("user %d class = %v, want malicious", u, classes[u])
		}
	}
}

func TestPolicyChangeMidRun(t *testing.T) {
	eng, err := New(sessionScenario(29)...)
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{}.
		At(2, DisclosureChange{Base: 0}). // go silent
		At(4, PolicyChange{Policy: PrivacyPolicy{Disclosure: 1, ExposureScale: 50}})
	s, err := eng.Session(context.Background(), WithMaxEpochs(6), WithSchedule(sched))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range s.Epochs() {
		if err != nil {
			t.Fatal(err)
		}
	}
	hist := eng.History()
	if hist[2].Disclosure != 0 {
		t.Fatalf("epoch 2 disclosure = %v, want 0 after silence intervention", hist[2].Disclosure)
	}
	if hist[4].Disclosure <= hist[2].Disclosure {
		t.Fatalf("policy restore did not raise disclosure: %v -> %v", hist[2].Disclosure, hist[4].Disclosure)
	}
}

func TestScheduleValidation(t *testing.T) {
	eng, err := New(sessionScenario(31)...)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Schedule{
		Schedule{}.At(-1, JoinWave{Users: []int{1}}),
		Schedule{}.At(2, LeaveWave{Users: []int{999}}),
		Schedule{}.At(2, LeaveWave{}),
		Schedule{}.At(2, TrustGateChange{Gate: 1.5}),
		Schedule{}.At(2, HonestyChange{Base: -0.1}),
		Schedule{}.At(2, BehaviorChange{Users: []int{1}, Class: Class(99)}),
		{ScheduledIntervention{Epoch: 1, Action: nil}},
	}
	for i, sched := range cases {
		if _, err := eng.Session(context.Background(), WithSchedule(sched)); err == nil {
			t.Errorf("case %d: bad schedule accepted", i)
		}
	}
	// Whitewash requires a Whitewasher mechanism; the None baseline is not.
	plain, err := New(WithPeers(10), WithReputationMechanism(NoReputation()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Session(context.Background(),
		WithSchedule(Schedule{}.At(1, WhitewashWave{Users: []int{3}}))); err == nil {
		t.Error("whitewash wave accepted for non-whitewashing mechanism")
	}
}

func TestScheduleBranchesIndependently(t *testing.T) {
	base := Schedule{}.At(1, JoinWave{Users: []int{1}})
	s1 := base.At(5, LeaveWave{Users: []int{2}})
	s2 := base.At(5, LeaveWave{Users: []int{3}})
	if got := s1[1].Action.(LeaveWave).Users[0]; got != 2 {
		t.Fatalf("branched schedule s1 sees user %d, want 2 (shared backing array)", got)
	}
	if got := s2[1].Action.(LeaveWave).Users[0]; got != 3 {
		t.Fatalf("branched schedule s2 sees user %d, want 3", got)
	}
	if len(base) != 1 {
		t.Fatalf("base schedule mutated to length %d", len(base))
	}
}

func TestHistoryReturnsCopy(t *testing.T) {
	eng, err := New(sessionScenario(37)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	h := eng.History()
	h[0].Trust = -999
	h[1] = EpochStats{}
	fresh := eng.History()
	if fresh[0].Trust == -999 || fresh[1] == (EpochStats{}) {
		t.Fatal("History exposes the engine's internal record")
	}
}
