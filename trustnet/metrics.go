package trustnet

import (
	"io"

	"repro/internal/metrics"
)

// Table renders fixed-width experiment tables.
type Table = metrics.Table

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return metrics.NewTable(title, headers...)
}

// Series is a named (x, y) sequence with monotonicity checks.
type Series = metrics.Series

// Stream accumulates streaming summary statistics (Welford).
type Stream = metrics.Stream

// RenderSeries prints aligned series against a shared x column.
func RenderSeries(w io.Writer, title, xName string, series ...*Series) {
	metrics.RenderSeries(w, title, xName, series...)
}

// Mean returns the arithmetic mean. An empty slice returns NaN — "no
// data" never masquerades as a measured 0.
func Mean(xs []float64) float64 { return metrics.Mean(xs) }

// Quantile returns the q-quantile by linear interpolation (q in [0,1];
// 0 and 1 return the minimum and maximum). An empty slice or a q outside
// [0,1] returns NaN.
func Quantile(xs []float64, q float64) float64 { return metrics.Quantile(xs, q) }

// KendallTau returns the Kendall rank correlation of two equal-length
// samples.
func KendallTau(a, b []float64) float64 { return metrics.KendallTau(a, b) }
