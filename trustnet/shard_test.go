package trustnet

import (
	"context"
	"runtime"
	"testing"
)

func shardScenario(extra ...Option) []Option {
	opts := []Option{
		WithPeers(80),
		WithRNGSeed(1234),
		WithMix(Mix{Fractions: map[Class]float64{
			Honest:    0.6,
			Malicious: 0.3,
			Colluder:  0.1,
		}}),
		WithReputationMechanism(EigenTrust(EigenTrustConfig{Pretrusted: []int{0, 1, 2}})),
		WithPrivacyPolicy(PrivacyPolicy{Disclosure: 0.8, TrustGate: 0.2, ExposureScale: 50}),
		WithCoupling(true),
		WithEpochRounds(5),
	}
	return append(opts, extra...)
}

// TestRunShardInvariance drives the public facade end to end: the coupled
// epoch history must be bit-for-bit identical for every shard count.
func TestRunShardInvariance(t *testing.T) {
	run := func(extra ...Option) []EpochStats {
		eng, err := New(shardScenario(extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := eng.Run(context.Background(), 5)
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	ref := run()
	for _, k := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(WithShards(k))
		if len(got) != len(ref) {
			t.Fatalf("shards=%d: %d epochs, want %d", k, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("shards=%d: epoch %d\n%+v\n!=\n%+v", k, i, got[i], ref[i])
			}
		}
	}
	got := run(WithParallelism(4))
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("WithParallelism(4): epoch %d diverged", i)
		}
	}
}

func TestShardOptionValidation(t *testing.T) {
	if _, err := New(shardScenario(WithShards(0))...); err == nil {
		t.Fatal("WithShards(0) accepted")
	}
	if _, err := New(shardScenario(WithParallelism(-1))...); err == nil {
		t.Fatal("WithParallelism(-1) accepted")
	}
	eng, err := New(shardScenario(WithShards(3))...)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", eng.Shards())
	}
	def, err := New(shardScenario()...)
	if err != nil {
		t.Fatal(err)
	}
	if def.Shards() != 1 {
		t.Fatalf("default Shards() = %d, want 1", def.Shards())
	}
}

// TestExploreWorkerInvariance pins the explorer: concurrent grid evaluation
// must return the same points, Area A and optimum as the sequential pool,
// for any shard count in the scenario template.
func TestExploreWorkerInvariance(t *testing.T) {
	explore := func(workers, shards int) *ExploreResult {
		scenario := Scenario{
			Peers:     40,
			Seed:      7,
			Mix:       &MixSpec{Fractions: map[string]float64{"honest": 0.7, "malicious": 0.3}},
			Mechanism: MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1}},
			Workers:   workers,
			Shards:    shards,
		}
		res, err := Explore(context.Background(), ExploreConfig{
			Scenario: scenario,
			Rounds:   10,
			GridSize: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := explore(1, 0)
	for _, cfg := range [][2]int{
		{4, 0},
		{4, 2},
		{3, 3},
	} {
		got := explore(cfg[0], cfg[1])
		if len(got.Points) != len(ref.Points) {
			t.Fatalf("%d points, want %d", len(got.Points), len(ref.Points))
		}
		for i := range ref.Points {
			if got.Points[i] != ref.Points[i] {
				t.Fatalf("point %d\n%+v\n!=\n%+v", i, got.Points[i], ref.Points[i])
			}
		}
		if got.Best != ref.Best || got.AreaFraction != ref.AreaFraction {
			t.Fatal("explorer summary diverged across worker counts")
		}
	}
}

// TestOptimizeWorkerInvariance pins the concurrent hill climb.
func TestOptimizeWorkerInvariance(t *testing.T) {
	optimize := func(workers int) Point {
		res, err := Optimize(context.Background(), ExploreConfig{
			Scenario: Scenario{
				Peers:     40,
				Seed:      7,
				Mix:       &MixSpec{Fractions: map[string]float64{"honest": 0.7, "malicious": 0.3}},
				Mechanism: MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1}},
				Workers:   workers,
			},
			Rounds:   10,
			GridSize: 3,
		}, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := optimize(1)
	for _, w := range []int{2, 8} {
		if got := optimize(w); got != ref {
			t.Fatalf("workers=%d optimum %+v != %+v", w, got, ref)
		}
	}
}

// TestExploreCancellation verifies ctx still cancels the concurrent sweep.
func TestExploreCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Explore(ctx, ExploreConfig{
		Scenario: Scenario{
			Peers:     40,
			Mechanism: MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0}},
		},
		Rounds:   5,
		GridSize: 3,
	})
	if err == nil {
		t.Fatal("cancelled explore returned nil error")
	}
}
