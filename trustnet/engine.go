package trustnet

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Summary aggregates scenario-level metrics of an engine run.
type Summary = workload.Summary

// RoundStats summarizes one interaction round.
type RoundStats = workload.RoundStats

// EpochStats records the coupled system's state after one §3 epoch.
type EpochStats = core.EpochStats

// Engine is the assembled three-facet trust system: a scenario (population,
// friendship graph, behaviour mix), a pluggable reputation mechanism, the
// privacy ledger, and the per-user trust model, driven either round by
// round (RunRounds) or through the §3 coupling epochs (Run).
//
// An Engine is not safe for concurrent mutation; AssessAll is the one
// method that may be called while no other method is running and itself
// fans work out over a pool of goroutines.
type Engine struct {
	cfg  engineConfig
	mech Mechanism
	dyn  *core.Dynamics
}

// New assembles an engine from the scenario options.
func New(opts ...Option) (*Engine, error) {
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	// Validate the full scenario before calling the factory, so a failed
	// construction never spends a single-use factory (UseMechanism).
	if err := cfg.wl.Validate(); err != nil {
		return nil, fmt.Errorf("trustnet: %w", err)
	}
	for user := range cfg.userWeights {
		if user >= cfg.wl.NumPeers {
			return nil, fmt.Errorf("trustnet: user %d out of range [0,%d)", user, cfg.wl.NumPeers)
		}
	}
	mech, err := cfg.factory(cfg.wl.NumPeers)
	if err != nil {
		return nil, fmt.Errorf("trustnet: mechanism factory: %w", err)
	}
	if mech == nil {
		return nil, fmt.Errorf("trustnet: mechanism factory returned nil")
	}
	dyn, err := core.NewDynamics(core.DynamicsConfig{
		Workload:      cfg.wl,
		Weights:       cfg.weights,
		Inertia:       cfg.inertia,
		BaseHonesty:   cfg.baseHonesty,
		EpochRounds:   cfg.epochRounds,
		Coupled:       cfg.coupled,
		ExposureScale: cfg.exposureScale,
	}, mech)
	if err != nil {
		return nil, fmt.Errorf("trustnet: %w", err)
	}
	for user, w := range cfg.userWeights {
		if err := dyn.TrustModel().SetUserWeights(user, w); err != nil {
			return nil, fmt.Errorf("trustnet: %w", err)
		}
	}
	return &Engine{cfg: cfg, mech: mech, dyn: dyn}, nil
}

// Peers returns the population size.
func (e *Engine) Peers() int { return e.cfg.wl.NumPeers }

// Shards returns the number of parallel shards the epoch pipeline scatters
// work over (WithShards / WithParallelism; 1 when unset).
func (e *Engine) Shards() int { return e.dyn.Engine().Shards() }

// Mechanism returns the plugged-in reputation mechanism.
func (e *Engine) Mechanism() Mechanism { return e.mech }

// Classes returns the current ground-truth behaviour class per peer (the
// scenario's assignment, as modified by any BehaviorChange interventions).
func (e *Engine) Classes() []Class { return e.dyn.Engine().Classes() }

// ActivePeers returns how many peers are currently present in the network
// (the population size minus users removed by LeaveWave interventions).
func (e *Engine) ActivePeers() int { return e.dyn.Engine().ActivePeers() }

// Ledger returns the disclosure ledger accounting every information flow
// of the scenario.
func (e *Engine) Ledger() *Ledger { return e.dyn.Engine().Ledger() }

// TrustModel returns the per-user trust state.
func (e *Engine) TrustModel() *TrustModel { return e.dyn.TrustModel() }

// RunRounds executes n interaction rounds without touching the coupling
// state — the single-mechanism evaluation mode of the §2 experiments.
func (e *Engine) RunRounds(n int) {
	e.dyn.Engine().Run(n)
}

// Epoch runs one §3 coupling epoch: the workload runs, the facets are
// measured, every user's trust updates, and — when coupling is enabled —
// trust feeds back into disclosure and honesty for the next epoch. It is a
// single-step Session.
func (e *Engine) Epoch() (EpochStats, error) {
	s, err := e.Session(context.Background(), WithMaxEpochs(1))
	if err != nil {
		return EpochStats{}, err
	}
	return s.Next()
}

// Run drives the coupled dynamics for the given number of epochs,
// honouring ctx between epochs. It returns the full epoch history
// recorded so far (including epochs from earlier Run/Epoch calls).
// A negative epoch count is an error, not a silent no-op.
//
// Run is the batch wrapper over Session; use Session directly to stream
// epochs, register observers, schedule interventions, or checkpoint.
func (e *Engine) Run(ctx context.Context, epochs int) ([]EpochStats, error) {
	if epochs < 0 {
		return e.History(), fmt.Errorf("trustnet: epoch count must be >= 0, got %d", epochs)
	}
	s, err := e.Session(ctx, WithMaxEpochs(epochs))
	if err != nil {
		return e.History(), err
	}
	for _, err := range s.Epochs() {
		if err != nil {
			return e.History(), err
		}
	}
	return e.History(), nil
}

// EpochIndex returns the index the next epoch will run as (equivalently,
// the number of completed coupling epochs).
func (e *Engine) EpochIndex() int { return e.dyn.EpochIndex() }

// SubmitReports feeds externally submitted feedback reports into the
// reputation mechanism, in order. Unlike in-simulation feedback, external
// reports bypass the disclosure-limited gatherer (submitting through the
// API is an explicit disclosure, so no random stream is consumed) and are
// assigned transaction ids from the engine's snapshotted counter. Reports
// are validated up front; nothing is applied unless all pass, so a bad
// batch never half-applies.
//
// Determinism contract: a run that applies the same reports in the same
// order at the same epoch boundaries — whether through a served daemon's
// queue or a scheduled ReportWave — produces bit-identical state.
func (e *Engine) SubmitReports(reports ...Report) error {
	for i, r := range reports {
		if err := checkReport(e, r); err != nil {
			return fmt.Errorf("trustnet: report %d: %w", i, err)
		}
	}
	for _, r := range reports {
		if err := e.workloadEngine().SubmitExternalReport(r.Rater, r.Ratee, r.Value); err != nil {
			return fmt.Errorf("trustnet: %w", err)
		}
	}
	return nil
}

// History returns a copy of the recorded coupling epochs; mutating it never
// corrupts the engine's record.
func (e *Engine) History() []EpochStats { return e.dyn.History() }

// Summary computes the scenario-level metrics so far.
func (e *Engine) Summary() Summary { return e.dyn.Engine().Summarize() }

// SharedReports returns how many feedback reports peers actually disclosed
// to the reputation layer.
func (e *Engine) SharedReports() int64 { return e.dyn.Engine().Gatherer().Gathered }

// GlobalTrust returns the system-level trust: the mean over users.
func (e *Engine) GlobalTrust() float64 { return e.dyn.TrustModel().GlobalTrust() }

// SystemTrusted reports whether the q-quantile of user trust reaches the
// threshold — i.e. at least (1−q) of users trust the system at `threshold`
// or more.
func (e *Engine) SystemTrusted(threshold, q float64) bool {
	return e.dyn.TrustModel().SystemTrusted(threshold, q)
}

// PrivacyFacets returns each user's ledger-backed privacy facet.
func (e *Engine) PrivacyFacets() []float64 { return e.dyn.Engine().PrivacyFacets() }

// Convergence returns the reputation mechanism's diagnostics for its most
// recent iterative Compute (iterations run, final L1 residual, whether it
// was warm-started); ok is false when the mechanism is not an iterative
// solver or has not recomputed yet. Per-epoch iteration counts also appear
// in EpochStats.MechIterations.
func (e *Engine) Convergence() (Convergence, bool) {
	return e.dyn.Engine().Convergence()
}

// ComputeIterations returns the cumulative number of solver iterations the
// mechanism has spent across the engine's whole run (it survives snapshot
// round-trips).
func (e *Engine) ComputeIterations() int64 {
	return e.dyn.Engine().ComputeIterations()
}

// workloadEngine exposes the underlying engine to the package's own
// assessment code.
func (e *Engine) workloadEngine() *workload.Engine { return e.dyn.Engine() }

// SetDenseReference switches the epoch tail into its dense reference mode:
// every user's trust and coupling cells are recomputed every epoch, with no
// settled-set or dirty-set skips. The results are bit-identical to the
// default sparse mode — golden tests and benchmarks use this to prove (and
// price) that equivalence.
func (e *Engine) SetDenseReference(on bool) { e.dyn.SetDenseReference(on) }
