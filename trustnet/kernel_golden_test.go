package trustnet

import (
	"context"
	"fmt"
	"testing"
)

// kernelMechanisms is the full mechanism matrix of the sparse-kernel golden
// suite. EigenTrust and PowerTrust run the CSR kernel; the rest pin the
// refactor's blast radius (their scores must be untouched by it).
func kernelMechanisms() map[string]func() MechanismFactory {
	return map[string]func() MechanismFactory{
		"eigentrust":       func() MechanismFactory { return EigenTrust(EigenTrustConfig{Pretrusted: []int{0, 1}}) },
		"powertrust":       func() MechanismFactory { return PowerTrust(PowerTrustConfig{}) },
		"powertrust-plain": func() MechanismFactory { return PowerTrustPlain(PowerTrustConfig{}) },
		"trustme":          func() MechanismFactory { return TrustMe(TrustMeConfig{}) },
		"anonrep":          func() MechanismFactory { return AnonRep(AnonRepConfig{}) },
		"none":             func() MechanismFactory { return NoReputation() },
	}
}

// TestMechanismScoresShardInvariant drives every mechanism through the
// facade at 1 vs 4 shards × three seeds: the final score vector (and the
// epoch history feeding it) must be bit-for-bit identical — mechanism
// compute now scatters over the engine's shard configuration, and shards
// must stay a pure scheduling knob.
func TestMechanismScoresShardInvariant(t *testing.T) {
	for name, factory := range kernelMechanisms() {
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				run := func(shards int) ([]float64, []EpochStats) {
					eng, err := New(
						WithPeers(60),
						WithRNGSeed(seed),
						WithMix(Mix{Fractions: map[Class]float64{
							Honest:    0.6,
							Malicious: 0.2,
							Colluder:  0.2,
						}}),
						WithReputationMechanism(factory()),
						WithPrivacyPolicy(PrivacyPolicy{Disclosure: 0.9, ExposureScale: 50}),
						WithCoupling(true),
						WithEpochRounds(4),
						WithShards(shards),
					)
					if err != nil {
						t.Fatal(err)
					}
					hist, err := eng.Run(context.Background(), 3)
					if err != nil {
						t.Fatal(err)
					}
					return eng.Mechanism().Scores(), hist
				}
				refScores, refHist := run(1)
				gotScores, gotHist := run(4)
				for j := range refScores {
					if gotScores[j] != refScores[j] {
						t.Fatalf("score[%d]: shards=4 %v != shards=1 %v (bit-for-bit contract)",
							j, gotScores[j], refScores[j])
					}
				}
				for i := range refHist {
					if gotHist[i] != refHist[i] {
						t.Fatalf("epoch %d diverged across shard counts", i)
					}
				}
			})
		}
	}
}
