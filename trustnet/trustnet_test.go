package trustnet

import (
	"context"
	"math"
	"strings"
	"testing"
)

func mix(malicious float64) Mix {
	return Mix{
		Fractions: map[Class]float64{
			Honest:    1 - malicious,
			Malicious: malicious,
		},
		ForceHonest: []int{0, 1, 2},
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name    string
		opts    []Option
		wantErr string
	}{
		{"defaults", nil, ""},
		{"nil option", []Option{nil}, "nil option"},
		{"peers too small", []Option{WithPeers(1)}, "peers"},
		{"negative graph param", []Option{WithGraph(BarabasiAlbert, 0)}, "graph parameter"},
		{"unknown graph kind", []Option{WithGraph(GraphKind(99), 4)}, "graph kind"},
		{"nil factory", []Option{WithReputationMechanism(nil)}, "factory"},
		{"disclosure above one", []Option{WithPrivacyPolicy(PrivacyPolicy{Disclosure: 1.5})}, "disclosure"},
		{"negative disclosure", []Option{WithPrivacyPolicy(PrivacyPolicy{Disclosure: -0.1})}, "disclosure"},
		{"gate at one", []Option{WithPrivacyPolicy(PrivacyPolicy{TrustGate: 1})}, "trust gate"},
		{"negative exposure scale", []Option{WithPrivacyPolicy(PrivacyPolicy{ExposureScale: -1})}, "exposure scale"},
		{"bad satisfaction memory", []Option{WithSatisfactionModel(SatisfactionModel{Memory: 1})}, "memory"},
		{"zero weights", []Option{WithWeights(Weights{})}, "zero"},
		{"negative weight", []Option{WithWeights(Weights{Satisfaction: -1, Reputation: 1, Privacy: 1})}, "negative"},
		{"negative user", []Option{WithUserWeights(-1, DefaultWeights())}, "user"},
		{"user weights out of range", []Option{WithPeers(10), WithUserWeights(10, DefaultWeights())}, "out of range"},
		{"inertia at one", []Option{WithInertia(1)}, "inertia"},
		{"base honesty above one", []Option{WithBaseHonesty(1.1)}, "honesty"},
		{"zero epoch rounds", []Option{WithEpochRounds(0)}, "epoch rounds"},
		{"unknown selection", []Option{WithSelection(Selection(7))}, "selection"},
		{"zero interactions", []Option{WithInteractionsPerRound(0)}, "interactions"},
		{"zero candidates", []Option{WithCandidateSize(0)}, "candidate"},
		{"zero recompute", []Option{WithRecomputeEvery(0)}, "recompute"},
		{"negative skew", []Option{WithActivitySkew(-1)}, "skew"},
		{"negative workers", []Option{WithWorkers(-1)}, "worker"},
		{"zero shards", []Option{WithShards(0)}, "shard"},
		{"zero parallelism", []Option{WithParallelism(0)}, "parallelism"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.opts...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("New() = %v, want success", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("New() err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestFirstOptionErrorWins(t *testing.T) {
	_, err := New(WithPeers(0), WithInertia(5))
	if err == nil || !strings.Contains(err.Error(), "peers") {
		t.Fatalf("err = %v, want the first failing option (peers)", err)
	}
}

// TestMechanismSwapping plugs every shipped factory into the same scenario;
// each must run and report scores for the full population under its own
// name.
func TestMechanismSwapping(t *testing.T) {
	const peers = 40
	factories := []struct {
		name    string
		factory MechanismFactory
	}{
		{"eigentrust", EigenTrust(EigenTrustConfig{Pretrusted: []int{0, 1, 2}})},
		{"trustme", TrustMe(TrustMeConfig{})},
		{"powertrust", PowerTrust(PowerTrustConfig{})},
		{"powertrust", PowerTrustPlain(PowerTrustConfig{})},
		{"anonrep", AnonRep(AnonRepConfig{Seed: 5})},
		{"none", NoReputation()},
	}
	for _, f := range factories {
		eng, err := New(
			WithPeers(peers),
			WithRNGSeed(3),
			WithMix(mix(0.3)),
			WithReputationMechanism(f.factory),
			WithRecomputeEvery(2),
		)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		eng.RunRounds(10)
		if got := eng.Mechanism().Name(); !strings.HasPrefix(got, f.name) {
			t.Fatalf("mechanism name = %q, want prefix %q", got, f.name)
		}
		if got := len(eng.Mechanism().Scores()); got != peers {
			t.Fatalf("%s: scores length = %d, want %d", f.name, got, peers)
		}
		a := eng.Assess()
		if len(a.PerUser) != peers {
			t.Fatalf("%s: assessment covers %d users, want %d", f.name, len(a.PerUser), peers)
		}
	}
}

func TestUseMechanismKeepsHandle(t *testing.T) {
	mech, err := NewEigenTrust(EigenTrustConfig{N: 30})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(
		WithPeers(30),
		WithRNGSeed(9),
		WithMix(mix(0.2)),
		WithReputationMechanism(UseMechanism(mech)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Mechanism() != Mechanism(mech) {
		t.Fatal("engine did not keep the provided mechanism handle")
	}
}

// TestWhitewasherSeam checks the mechanisms that advertise identity resets
// through the facade interface.
func TestWhitewasherSeam(t *testing.T) {
	et, err := NewEigenTrust(EigenTrustConfig{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewTrustMe(TrustMeConfig{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []Whitewasher{et, tm} {
		w.Whitewash(0) // must not panic on fresh state
	}
}

// TestDeterministicSeededRuns: equal seeds and settings reproduce the
// coupled trajectory and the batch assessment bit for bit; a different
// seed diverges.
func TestDeterministicSeededRuns(t *testing.T) {
	build := func(seed uint64) *Engine {
		eng, err := New(
			WithPeers(60),
			WithRNGSeed(seed),
			WithMix(mix(0.3)),
			WithReputationMechanism(EigenTrust(EigenTrustConfig{Pretrusted: []int{0, 1, 2}})),
			WithPrivacyPolicy(PrivacyPolicy{Disclosure: 0.8}),
			WithRecomputeEvery(2),
			WithCoupling(true),
			WithEpochRounds(4),
		)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	ctx := context.Background()
	a := build(7)
	b := build(7)
	ha, err := a.Run(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Run(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ha) != len(hb) {
		t.Fatalf("history lengths differ: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("epoch %d diverged under equal seeds:\n%+v\n%+v", i, ha[i], hb[i])
		}
	}
	ua, err := a.AssessAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := b.AssessAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("user %d assessment diverged under equal seeds", i)
		}
	}

	c := build(8)
	hc, err := c.Run(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ha {
		if ha[i] != hc[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// TestAssessAllConcurrent exercises the worker-pool fan-out over a
// 1200-user population; under -race this is the batch path's data-race
// check.
func TestAssessAllConcurrent(t *testing.T) {
	const peers = 1200
	eng, err := New(
		WithPeers(peers),
		WithRNGSeed(11),
		WithMix(mix(0.3)),
		WithReputationMechanism(EigenTrust(EigenTrustConfig{Pretrusted: []int{0, 1, 2}})),
		WithUserWeights(5, Weights{Satisfaction: 1, Reputation: 0.5, Privacy: 3}),
		WithRecomputeEvery(2),
		WithWorkers(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(4)
	all, err := eng.AssessAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != peers {
		t.Fatalf("AssessAll covered %d users, want %d", len(all), peers)
	}
	for i, u := range all {
		if u.User != i {
			t.Fatalf("user %d assessment landed at index %d", u.User, i)
		}
		if u.Trust < 0 || u.Trust > 1 || math.IsNaN(u.Trust) {
			t.Fatalf("user %d trust %v out of [0,1]", i, u.Trust)
		}
		if !u.Facets.Valid() {
			t.Fatalf("user %d facets %+v invalid", i, u.Facets)
		}
	}
	// The batch path must agree with the single-shot path combined under
	// each user's effective weights.
	a := eng.Assess()
	for _, u := range []int{0, 5, peers - 1} {
		want, err := Combine(a.PerUser[u], eng.TrustModel().UserWeights(u))
		if err != nil {
			t.Fatal(err)
		}
		if got := all[u].Trust; got != want {
			t.Fatalf("user %d batch trust %v != single-shot %v", u, got, want)
		}
	}
}

func TestAssessAllHonoursContext(t *testing.T) {
	eng, err := New(WithPeers(50), WithRNGSeed(2), WithMix(mix(0.2)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.AssessAll(ctx); err == nil {
		t.Fatal("AssessAll ignored a cancelled context")
	}
}

func TestRunHonoursContext(t *testing.T) {
	eng, err := New(WithPeers(30), WithRNGSeed(2), WithMix(mix(0.2)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, 5); err == nil {
		t.Fatal("Run ignored a cancelled context")
	}
	if got := len(eng.History()); got != 0 {
		t.Fatalf("cancelled run still recorded %d epochs", got)
	}
}

// TestZeroDisclosure: the option layer can express a true zero base
// disclosure, which the raw config cannot; nothing reaches the mechanism.
func TestZeroDisclosure(t *testing.T) {
	eng, err := New(
		WithPeers(30),
		WithRNGSeed(4),
		WithMix(mix(0.2)),
		WithPrivacyPolicy(PrivacyPolicy{Disclosure: 0}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Epoch(); err != nil {
		t.Fatal(err)
	}
	if got := eng.SharedReports(); got != 0 {
		t.Fatalf("zero disclosure still shared %d reports", got)
	}

	// The guarantee must also hold on the RunRounds path, which never
	// installs the dynamics' per-epoch disclosure vector.
	eng2, err := New(
		WithPeers(30),
		WithRNGSeed(4),
		WithMix(mix(0.2)),
		WithPrivacyPolicy(PrivacyPolicy{Disclosure: 0}),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng2.RunRounds(10)
	if got := eng2.SharedReports(); got != 0 {
		t.Fatalf("zero disclosure still shared %d reports on the RunRounds path", got)
	}
}

func TestUserWeightsChangeAssessment(t *testing.T) {
	build := func(opts ...Option) *Engine {
		base := []Option{
			WithPeers(40),
			WithRNGSeed(6),
			WithMix(mix(0.3)),
			WithPrivacyPolicy(PrivacyPolicy{Disclosure: 0.5}),
		}
		eng, err := New(append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		eng.RunRounds(10)
		return eng
	}
	plain := build()
	weighted := build(WithUserWeights(3, Weights{Satisfaction: 0.1, Reputation: 0.1, Privacy: 5}))
	ctx := context.Background()
	ap, err := plain.AssessAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := weighted.AssessAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ap[3].Trust == aw[3].Trust {
		t.Fatal("per-user weights did not change the user's combined trust")
	}
	if ap[4].Trust != aw[4].Trust {
		t.Fatal("per-user weights leaked into another user's trust")
	}
}

// TestExploreAndOptimize runs a tiny grid end to end through the facade.
func TestExploreAndOptimize(t *testing.T) {
	cfg := ExploreConfig{
		Scenario: Scenario{
			Peers:          24,
			Seed:           5,
			Mix:            &MixSpec{Fractions: map[string]float64{"honest": 0.7, "malicious": 0.3}},
			Mechanism:      MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}},
			RecomputeEvery: 2,
		},
		Rounds:   6,
		GridSize: 2,
	}
	ctx := context.Background()
	res, err := Explore(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("explored %d points, want 4", len(res.Points))
	}
	if res.Best.Trust <= 0 {
		t.Fatalf("best trust %v, want > 0", res.Best.Trust)
	}
	pt, err := Optimize(ctx, cfg, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Trust < res.Best.Trust {
		t.Fatalf("optimizer (%v) fell below the grid best (%v)", pt.Trust, res.Best.Trust)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Explore(cancelled, cfg); err == nil {
		t.Fatal("Explore ignored a cancelled context")
	}
	if _, err := Optimize(ctx, cfg, Constraints{MinPrivacy: 2}); err != ErrInfeasible {
		t.Fatalf("Optimize err = %v, want ErrInfeasible", err)
	}
}

// TestUseMechanismSingleUse: a shared instance cannot masquerade as a
// fresh-per-point factory; the second construction fails loudly instead of
// cross-contaminating evaluations.
func TestUseMechanismSingleUse(t *testing.T) {
	mech, err := NewEigenTrust(EigenTrustConfig{N: 20})
	if err != nil {
		t.Fatal(err)
	}
	factory := UseMechanism(mech)
	opts := []Option{WithPeers(20), WithRNGSeed(1), WithReputationMechanism(factory)}
	if _, err := New(opts...); err != nil {
		t.Fatalf("first use: %v", err)
	}
	if _, err := New(opts...); err == nil || !strings.Contains(err.Error(), "single-use") {
		t.Fatalf("second use err = %v, want single-use error", err)
	}
}

// TestUseMechanismSurvivesFailedNew: a construction that fails validation
// must not consume the single-use factory — retrying with corrected
// options succeeds.
func TestUseMechanismSurvivesFailedNew(t *testing.T) {
	mech, err := NewEigenTrust(EigenTrustConfig{N: 20})
	if err != nil {
		t.Fatal(err)
	}
	factory := UseMechanism(mech)
	bad := Mix{Fractions: map[Class]float64{Honest: -1}}
	if _, err := New(WithPeers(20), WithMix(bad), WithReputationMechanism(factory)); err == nil {
		t.Fatal("negative mix fraction accepted")
	}
	if _, err := New(WithPeers(20), WithRNGSeed(1), WithReputationMechanism(factory)); err != nil {
		t.Fatalf("retry after failed New: %v (single-use reservation leaked)", err)
	}
}

// TestExplicitZeroInertia: WithInertia(0) must really run memoryless, not
// silently fall back to the core default of 0.5.
func TestExplicitZeroInertia(t *testing.T) {
	build := func(opts ...Option) []EpochStats {
		base := []Option{
			WithPeers(40), WithRNGSeed(3), WithMix(mix(0.3)),
			WithPrivacyPolicy(PrivacyPolicy{Disclosure: 0.8}),
			WithEpochRounds(3),
		}
		eng, err := New(append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		h, err := eng.Run(context.Background(), 3)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	def := build()                  // inertia defaults to 0.5
	zero := build(WithInertia(0))   // memoryless
	half := build(WithInertia(0.5)) // explicit default
	for i := range def {
		if def[i] != half[i] {
			t.Fatalf("explicit 0.5 diverged from default at epoch %d", i)
		}
	}
	same := true
	for i := range def {
		if def[i].Trust != zero[i].Trust {
			same = false
		}
	}
	if same {
		t.Fatal("WithInertia(0) produced the default-inertia trajectory; the explicit zero was swallowed")
	}
}

// TestExplorerRejectsDynamicsFields: coupled-dynamics fields in an
// explorer scenario fail loudly instead of being silently dropped.
func TestExplorerRejectsDynamicsFields(t *testing.T) {
	half := 0.5
	for _, tc := range []struct {
		name string
		mut  func(*Scenario)
	}{
		{"Coupled", func(sc *Scenario) { sc.Coupled = true }},
		{"EpochRounds", func(sc *Scenario) { sc.EpochRounds = 5 }},
		{"Epochs", func(sc *Scenario) { sc.Epochs = 3 }},
		{"Inertia", func(sc *Scenario) { sc.Inertia = &half }},
		{"BaseHonesty", func(sc *Scenario) { sc.BaseHonesty = &half }},
		{"UserWeights", func(sc *Scenario) { sc.UserWeights = map[int]Weights{0: DefaultWeights()} }},
		{"Schedule", func(sc *Scenario) { sc.Schedule = Schedule{}.At(1, CouplingChange{Enabled: true}) }},
	} {
		sc := Scenario{Peers: 20, Seed: 1}
		tc.mut(&sc)
		cfg := ExploreConfig{Scenario: sc, Rounds: 3, GridSize: 2}
		if _, err := EvaluateSetting(cfg, Setting{}); err == nil || !strings.Contains(err.Error(), tc.name) {
			t.Fatalf("%s: err = %v, want rejection naming the field", tc.name, err)
		}
	}
}

// TestEvaluateSettingDeterministic: the explorer builds a fresh mechanism
// per point, so re-evaluating a setting reproduces it exactly.
func TestEvaluateSettingDeterministic(t *testing.T) {
	cfg := ExploreConfig{
		Scenario: Scenario{
			Peers:          24,
			Seed:           5,
			Mix:            &MixSpec{Fractions: map[string]float64{"honest": 0.7, "malicious": 0.3}},
			RecomputeEvery: 2,
		},
		Rounds: 6,
	}
	s := Setting{Disclosure: 0.5, TrustGate: 0.2}
	p1, err := EvaluateSetting(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := EvaluateSetting(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("re-evaluated setting diverged:\n%+v\n%+v", p1, p2)
	}
}
