package trustnet

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Assessment carries the per-user facets extracted from a running scenario
// plus the shared reputation-power measurement.
type Assessment = core.Assessment

// UserAssessment is one user's view in a batch assessment: her measured
// facets and the combined metric Φ under her weight profile.
type UserAssessment struct {
	User   int
	Facets Facets
	// Trust is the instantaneous combined metric Φ(facets, weights) under
	// the user's effective weight profile — not the inertia-smoothed trust
	// the TrustModel tracks across epochs.
	Trust float64
}

// Assess is the single-shot path: measure the three facets of the scenario
// as it stands (§2.1–2.3 extraction, see the Assessment fields).
func (e *Engine) Assess() Assessment {
	return core.Assess(e.workloadEngine())
}

// AssessAll is the batch path: one facet measurement, then every user's
// combined trust computed concurrently by a worker pool (WithWorkers caps
// it; default GOMAXPROCS). The context cancels the fan-out between users.
func (e *Engine) AssessAll(ctx context.Context) ([]UserAssessment, error) {
	a := e.Assess()
	n := len(a.PerUser)
	tm := e.dyn.TrustModel()

	workers := e.cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	out := make([]UserAssessment, n)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range next {
				f := a.PerUser[u]
				trust, err := core.Combine(f, tm.UserWeights(u))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				out[u] = UserAssessment{User: u, Facets: f, Trust: trust}
			}
		}()
	}
feed:
	for u := 0; u < n; u++ {
		select {
		case <-ctx.Done():
			errOnce.Do(func() { firstErr = ctx.Err() })
			break feed
		case next <- u:
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
