package trustnet

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// sweepBase is a small scenario for sweep tests.
func sweepBase() Scenario {
	return Scenario{
		Peers:          24,
		Seed:           5,
		Mix:            &MixSpec{Fractions: map[string]float64{"honest": 0.7, "malicious": 0.3}, ForceHonest: []int{0, 1}},
		Mechanism:      MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1}},
		Coupled:        true,
		EpochRounds:    3,
		Epochs:         3,
		RecomputeEvery: 2,
	}
}

// TestSweepDeterministicAcrossParallelism: the determinism regression of
// the sweep executor — a (disclosure × gate) grid with seed replications
// run at parallelism 1 and parallelism 8 must emit byte-identical
// SweepResult JSON.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	run := func(workers int) []byte {
		res, err := NewExperiment(sweepBase()).
			Vary("disclosure", 0.2, 0.6, 1).
			Vary("gate", 0, 0.3).
			Seeds(3).
			Workers(workers).
			Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	p1 := run(1)
	p8 := run(8)
	if !bytes.Equal(p1, p8) {
		t.Fatal("SweepResult JSON differs between parallelism 1 and 8")
	}
}

// TestSweepMatrixShape: cells expand row-major over the axes, each cell
// replicates over the seeds in order, and At() indexes the matrix.
func TestSweepMatrixShape(t *testing.T) {
	exp := NewExperiment(sweepBase()).
		Vary("disclosure", 0.5, 1).
		VaryMechanism(MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1}}, MechanismSpec{Kind: "none"}).
		Seeds(2)
	if got := exp.Runs(); got != 8 {
		t.Fatalf("Runs() = %d, want 8", got)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	cell := res.At(1, 0)
	if d := cell.Coord.Get("disclosure"); d != 1 {
		t.Fatalf("At(1,0) disclosure = %v, want 1", d)
	}
	if lbl := cell.Coord[1].Label; lbl != "eigentrust" {
		t.Fatalf("At(1,0) mechanism label = %q", lbl)
	}
	if len(cell.Runs) != 2 {
		t.Fatalf("replications = %d, want 2", len(cell.Runs))
	}
	if cell.Runs[0].Seed != 5 || cell.Runs[1].Seed != 6 {
		t.Fatalf("seeds = %d,%d want 5,6", cell.Runs[0].Seed, cell.Runs[1].Seed)
	}
	// Aggregates fold the replications.
	wantMean := (cell.Runs[0].Trust + cell.Runs[1].Trust) / 2
	if math.Abs(cell.Trust.Mean-wantMean) > 1e-12 {
		t.Fatalf("trust mean %v, want %v", cell.Trust.Mean, wantMean)
	}
	if cell.Final == nil || len(cell.Epochs) != 3 {
		t.Fatalf("epoch aggregation missing: %d epochs, final %v", len(cell.Epochs), cell.Final)
	}
	if !reflect.DeepEqual(*cell.Final, cell.Epochs[2]) {
		t.Fatal("Final is not the last epoch aggregate")
	}
	// Equal seeds ⇒ the same cell in a separate sweep is bit-for-bit equal.
	res2, err := NewExperiment(sweepBase()).
		Vary("disclosure", 1).
		Seeds(2).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Cells[0].Runs[0].History, cell.Runs[0].History) {
		t.Fatal("same scenario+seed produced different histories across sweeps")
	}
}

// TestSweepClassFractionAxis: an adversary-class parameter adjusts the mix
// with the honest class absorbing the remainder.
func TestSweepClassFractionAxis(t *testing.T) {
	sc := sweepBase()
	if err := applyParam(&sc, "malicious", 0.5); err != nil {
		t.Fatal(err)
	}
	if sc.Mix.Fractions["malicious"] != 0.5 || math.Abs(sc.Mix.Fractions["honest"]-0.5) > 1e-12 {
		t.Fatalf("fractions = %v", sc.Mix.Fractions)
	}
	if err := applyParam(&sc, "selfish", 0.6); err == nil {
		t.Fatal("fractions exceeding 1 accepted")
	}
	fresh := Scenario{}
	if err := applyParam(&fresh, "traitor", 0.2); err != nil {
		t.Fatal(err)
	}
	if fresh.Mix.Fractions["traitor"] != 0.2 || math.Abs(fresh.Mix.Fractions["honest"]-0.8) > 1e-12 {
		t.Fatalf("fresh mix = %v", fresh.Mix.Fractions)
	}
}

// TestSweepBuilderValidation: malformed sweeps fail at declaration or at
// Run, never by silently shrinking the matrix.
func TestSweepBuilderValidation(t *testing.T) {
	base := sweepBase()
	cases := []struct {
		name    string
		build   func() *Experiment
		wantErr string
	}{
		{"no values", func() *Experiment { return NewExperiment(base).Vary("disclosure") }, "no values"},
		{"unknown param", func() *Experiment { return NewExperiment(base).Vary("charisma", 1) }, "unknown sweep parameter"},
		{"tuple arity", func() *Experiment {
			return NewExperiment(base).VaryTuples([]string{"disclosure", "gate"}, []float64{1})
		}, "values"},
		{"zero seeds", func() *Experiment { return NewExperiment(base).Seeds(0) }, "seed replication"},
		{"empty seed list", func() *Experiment { return NewExperiment(base).SeedList() }, "seed list"},
		{"zero epochs", func() *Experiment { return NewExperiment(base).Epochs(0) }, "epochs"},
		{"zero workers", func() *Experiment { return NewExperiment(base).Workers(0) }, "workers"},
		{"bad mechanism", func() *Experiment {
			return NewExperiment(base).VaryMechanism(MechanismSpec{Kind: "oracle"})
		}, "mechanism kind"},
		{"non-integer int param", func() *Experiment { return NewExperiment(base).Vary("peers", 10.5) }, "integer"},
		{"no epoch budget", func() *Experiment {
			b := base
			b.Epochs = 0
			return NewExperiment(b).Vary("disclosure", 1)
		}, "epoch budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build().Run(context.Background())
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestSweepEmitters: the CSV emitter writes one row per (cell, epoch) with
// the axis columns leading; JSON re-decodes to the same cell structure.
func TestSweepEmitters(t *testing.T) {
	res, err := NewExperiment(sweepBase()).
		Vary("disclosure", 0.4, 1).
		Seeds(2).
		Observe(func(eng *Engine) map[string]float64 {
			return map[string]float64{"active": float64(eng.ActivePeers())}
		}).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+2*3 {
		t.Fatalf("csv rows = %d, want header + 2 cells x 3 epochs", len(rows))
	}
	if rows[0][0] != "disclosure" || rows[0][1] != "seeds" {
		t.Fatalf("csv header = %v", rows[0])
	}
	last := rows[0][len(rows[0])-1]
	if last != "active_mean" {
		t.Fatalf("extra metric column missing, header ends with %q", last)
	}
	if rows[1][0] != "0.4" || rows[4][0] != "1" {
		t.Fatalf("axis column values wrong: %q / %q", rows[1][0], rows[4][0])
	}

	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded SweepResult
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Cells) != 2 || decoded.Cells[0].Extra["active"].N != 2 {
		t.Fatalf("decoded sweep result mangled: %+v", decoded.Cells)
	}
}

// TestExperimentSpecSerializable: the sweep's own spec round-trips through
// JSON, so a study file can describe base + axes + seeds.
func TestExperimentSpecSerializable(t *testing.T) {
	exp := NewExperiment(sweepBase()).
		Vary("disclosure", 0, 0.5, 1).
		VaryMechanism(MechanismSpec{Kind: "eigentrust"}, MechanismSpec{Kind: "trustme"}).
		Seeds(2).
		Epochs(4)
	spec := exp.Spec()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var rt ExperimentSpec
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, rt) {
		t.Fatalf("spec round trip diverged:\n%+v\n!=\n%+v", spec, rt)
	}
}

// TestSweepEpochsAxis: "epochs" is a sweepable parameter — each cell runs
// its own epoch budget, and a zero budget from an axis errors instead of
// silently running the base value.
func TestSweepEpochsAxis(t *testing.T) {
	res, err := NewExperiment(sweepBase()).
		Vary("epochs", 1, 4).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Cells[0].Runs[0].History); got != 1 {
		t.Fatalf("epochs=1 cell ran %d epochs", got)
	}
	if got := len(res.Cells[1].Runs[0].History); got != 4 {
		t.Fatalf("epochs=4 cell ran %d epochs", got)
	}
	if _, err := NewExperiment(sweepBase()).Vary("epochs", 0).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "epoch budget") {
		t.Fatalf("zero-epoch axis err = %v", err)
	}
}
