package repro

import (
	"context"
	"testing"

	"repro/trustnet"
)

// benchSessionOpts is the shared scenario of the session-overhead benchmark:
// the no-op mechanism isolates the harness cost (session bookkeeping,
// observer dispatch, schedule scanning) from scoring-algorithm cost.
func benchSessionOpts(users int) []trustnet.Option {
	return []trustnet.Option{
		trustnet.WithPeers(users),
		trustnet.WithRNGSeed(1),
		trustnet.WithMix(trustnet.Mix{Fractions: map[trustnet.Class]float64{
			trustnet.Honest:    0.7,
			trustnet.Malicious: 0.3,
		}}),
		trustnet.WithReputationMechanism(trustnet.NoReputation()),
		trustnet.WithPrivacyPolicy(trustnet.PrivacyPolicy{Disclosure: 0.8, ExposureScale: 50}),
		trustnet.WithCoupling(true),
		trustnet.WithEpochRounds(5),
		trustnet.WithRecomputeEvery(2),
	}
}

// BenchmarkSessionOverhead contrasts the batch Run path against the
// streaming Session path (plain, and with observers attached) on equal
// seeds. Since PR 3 rewired Run as a thin wrapper over Session, the three
// rows should be indistinguishable — this benchmark exists to keep it that
// way, and CI publishes it alongside the epoch benchmark.
func BenchmarkSessionOverhead(b *testing.B) {
	const users, epochs = 1000, 3
	b.Run("mode=run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := trustnet.New(benchSessionOpts(users)...)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(context.Background(), epochs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=session", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := trustnet.New(benchSessionOpts(users)...)
			if err != nil {
				b.Fatal(err)
			}
			s, err := eng.Session(context.Background(), trustnet.WithMaxEpochs(epochs))
			if err != nil {
				b.Fatal(err)
			}
			for _, err := range s.Epochs() {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("mode=session-observed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := trustnet.New(benchSessionOpts(users)...)
			if err != nil {
				b.Fatal(err)
			}
			var seenEpochs, seenRounds int
			s, err := eng.Session(context.Background(),
				trustnet.WithMaxEpochs(epochs),
				trustnet.OnEpoch(func(trustnet.EpochStats) { seenEpochs++ }),
				trustnet.OnRound(func(trustnet.RoundStats) { seenRounds++ }),
			)
			if err != nil {
				b.Fatal(err)
			}
			for _, err := range s.Epochs() {
				if err != nil {
					b.Fatal(err)
				}
			}
			if seenEpochs != epochs {
				b.Fatal("observer missed epochs")
			}
		}
	})
}

// BenchmarkSnapshot measures the checkpoint cost itself: capturing and
// encoding the full engine state of a warmed-up 1000-user scenario.
func BenchmarkSnapshot(b *testing.B) {
	eng, err := trustnet.New(benchSessionOpts(1000)...)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), 3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var bytesOut int
	for i := 0; i < b.N; i++ {
		snap, err := eng.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		var sink countingWriter
		if err := snap.Encode(&sink); err != nil {
			b.Fatal(err)
		}
		bytesOut = sink.n
	}
	b.ReportMetric(float64(bytesOut), "snapshot-bytes")
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
