// Command loadgen measures a trustnetd serving API under query load:
// queries/sec and p50/p99 latency from N concurrent workers, while epochs
// stream underneath.
//
// Point it at a running daemon:
//
//	loadgen -url http://127.0.0.1:8321 -duration 10s -concurrency 8
//
// or let it self-host a scenario for a hermetic measurement (no daemon, no
// network stack beyond localhost):
//
//	loadgen -scenario baseline -duration 5s
//
// With -json the result prints as one JSON object. The committed serving
// numbers (BENCH_serving.json) come from the BenchmarkServing harness, which
// shares this tool's measurement core.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/serve"
	"repro/trustnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		url         = fs.String("url", "", "base URL of a running trustnetd (empty = self-host -scenario)")
		scenarioRef = fs.String("scenario", "baseline", "scenario to self-host when -url is empty")
		interval    = fs.Duration("epoch-interval", 0, "epoch pacing for the self-hosted server (0 = continuous)")
		duration    = fs.Duration("duration", 10*time.Second, "how long to generate load")
		concurrency = fs.Int("concurrency", 8, "concurrent query workers")
		requests    = fs.Int("requests", 0, "total request cap (0 = bounded by -duration)")
		asJSON      = fs.Bool("json", false, "print the result as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	client := &http.Client{Timeout: 30 * time.Second}
	base := *url
	if base == "" {
		sc, err := trustnet.LoadScenario(*scenarioRef)
		if err != nil {
			return err
		}
		eng, err := sc.NewEngine()
		if err != nil {
			return err
		}
		srv, err := serve.New(serve.Config{Engine: eng, Schedule: sc.Schedule, EpochInterval: *interval})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		if err := srv.Start(ctx); err != nil {
			return err
		}
		base = ts.URL
		fmt.Fprintf(w, "loadgen: self-hosting scenario %q (%d peers, %s) at %s\n",
			sc.Name, eng.Peers(), eng.Mechanism().Name(), base)
	}

	users, err := population(ctx, client, base)
	if err != nil {
		return err
	}
	res, err := serve.RunLoad(ctx, client, base, serve.LoadOptions{
		Concurrency: *concurrency,
		Requests:    *requests,
		Duration:    *duration,
		Users:       users,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(w, "loadgen: %d requests in %v (%d workers, %d errors)\n",
		res.Requests, res.Elapsed.Round(time.Millisecond), *concurrency, res.Errors)
	fmt.Fprintf(w, "loadgen: %.0f queries/sec, p50 %v, p99 %v\n",
		res.QPS, res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond))
	return nil
}

// population asks the target for its peer count so score queries stay in
// range.
func population(ctx context.Context, client *http.Client, base string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/stats", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("stats probe: %w", err)
	}
	defer resp.Body.Close()
	var stats struct {
		Peers int `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return 0, fmt.Errorf("stats probe: %w", err)
	}
	if stats.Peers <= 0 {
		return 0, fmt.Errorf("stats probe: target reports %d peers", stats.Peers)
	}
	return stats.Peers, nil
}
