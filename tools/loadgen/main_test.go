package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSelfHostedLoad runs the generator against a self-hosted scenario with
// a small request cap: the pipeline from flags to measured quantiles works
// end to end without a daemon.
func TestSelfHostedLoad(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-scenario", "quickstart", "-requests", "200", "-duration", "30s", "-concurrency", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "queries/sec") || !strings.Contains(out, "p99") {
		t.Fatalf("missing measurement lines:\n%s", out)
	}
	if !strings.Contains(out, "200 requests") {
		t.Fatalf("request cap not honored:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-scenario", "quickstart", "-requests", "50", "-duration", "30s", "-json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	// The self-host banner precedes the JSON object.
	out := sb.String()
	idx := strings.Index(out, "{")
	if idx < 0 {
		t.Fatalf("no JSON object in output:\n%s", out)
	}
	var res struct {
		Requests int     `json:"requests"`
		QPS      float64 `json:"qps"`
		P99      int64   `json:"p99_ns"`
	}
	if err := json.Unmarshal([]byte(out[idx:]), &res); err != nil {
		t.Fatal(err)
	}
	if res.Requests != 50 || res.QPS <= 0 || res.P99 <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"-scenario", "no-such-scenario", "-requests", "1"},
		{"-url", "http://127.0.0.1:1", "-requests", "1", "-duration", "2s"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
