// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout. CI uses it to turn the sharded-epoch benchmark into
// BENCH_epoch.json, the sweep benchmark into BENCH_sweep.json, the
// mechanism-kernel benchmark (users × density × kernel × workers axes) into
// BENCH_mechanisms.json, the serving benchmark into BENCH_serving.json, and
// the cluster benchmark (users × topology axes) into BENCH_cluster.json —
// the artifacts that track the perf trajectory across PRs.
//
// Custom benchmark metrics (b.ReportMetric: qps, p50-ns, p99-ns,
// snapshot-bytes, ...) land in each row's "metrics" map; tools/benchdiff
// gates regressions against a committed baseline.
//
//	go test -run '^$' -bench BenchmarkShardedEpoch . | go run ./tools/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches e.g.
// BenchmarkShardedEpoch/users=1000/shards=4-8  12  98765432 ns/op  1234 B/op  56 allocs/op
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

// shardCase extracts the users/shards axes from a sub-benchmark name.
var shardCase = regexp.MustCompile(`users=(\d+)/shards=(\d+)`)

// workerCase extracts a trailing workers= axis (the sweep benchmark's
// parallelism knob); the prefix before it keys the speedup entry.
var workerCase = regexp.MustCompile(`^(.+?)/workers=(\d+)$`)

// topologyCase matches the cluster benchmark's remote-worker rows; each
// pairs with the topology=local sibling of the same case. (workersK, not
// workers-K: a trailing -<digits> would collide with the -GOMAXPROCS
// suffix stripping.)
var topologyCase = regexp.MustCompile(`topology=workers\d+`)

type result struct {
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds the row's custom units (b.ReportMetric) and, under
	// -benchmem, the allocator columns — everything after ns/op.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type output struct {
	Benchmarks map[string]result `json:"benchmarks"`
	// Speedup is ns/op(parallelism=1) / ns/op(parallelism=K) per case and
	// K > 1, over the shards= (epoch bench) or workers= (sweep and
	// mechanism benches) axis — the headline number the acceptance bar
	// tracks. Cases run at several densities keep the density= token in
	// their key, so each density row gets its own speedup entry.
	//
	// For the mechanism bench, rows whose name differs only in
	// kernel=sparse vs kernel=dense additionally get a
	// "kernel=sparse-vs-dense" entry: ns/op(dense) / ns/op(sparse), the
	// dense-baseline speedup of the CSR kernel.
	//
	// For the cluster bench, rows whose name differs only in
	// topology=workersK vs topology=local get a
	// "topology=local-vs-workersK" entry: ns/op(local) / ns/op(cluster).
	// Values below 1 quantify the transport overhead of distributing the
	// same bit-identical epoch across K worker processes.
	Speedup map[string]float64 `json:"speedup,omitempty"`
}

// customMetrics parses the (value, unit) pairs after the iteration count of
// one benchmark line, skipping ns/op (kept as the row's primary column).
func customMetrics(line string) map[string]float64 {
	fields := strings.Fields(line)
	var metrics map[string]float64
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			continue
		}
		if metrics == nil {
			metrics = map[string]float64{}
		}
		metrics[unit] = v
	}
	return metrics
}

func main() {
	if err := process(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func process(r io.Reader, w io.Writer) error {
	out := output{Benchmarks: map[string]result{}}
	nsByCase := map[string]map[int]float64{} // case key -> parallelism -> ns/op
	axisByCase := map[string]string{}        // case key -> "shards" | "workers"
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		out.Benchmarks[m[1]] = result{Iterations: iters, NsPerOp: ns, Metrics: customMetrics(sc.Text())}
		if c := shardCase.FindStringSubmatch(m[1]); c != nil {
			shards, _ := strconv.Atoi(c[2])
			key := "users=" + c[1]
			if nsByCase[key] == nil {
				nsByCase[key] = map[int]float64{}
			}
			nsByCase[key][shards] = ns
			axisByCase[key] = "shards"
		} else if c := workerCase.FindStringSubmatch(m[1]); c != nil {
			workers, _ := strconv.Atoi(c[2])
			key := c[1]
			if nsByCase[key] == nil {
				nsByCase[key] = map[int]float64{}
			}
			nsByCase[key][workers] = ns
			axisByCase[key] = "workers"
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, byShards := range nsByCase {
		base, ok := byShards[1]
		if !ok || base == 0 {
			continue
		}
		for shards, ns := range byShards {
			if shards == 1 || ns == 0 {
				continue
			}
			if out.Speedup == nil {
				out.Speedup = map[string]float64{}
			}
			out.Speedup[fmt.Sprintf("%s/%s=%d", key, axisByCase[key], shards)] = base / ns
		}
	}
	// Kernel axis: pair each kernel=sparse row with its kernel=dense
	// sibling (same mech/users/density/workers) and report dense/sparse.
	for name, sparse := range out.Benchmarks {
		if !strings.Contains(name, "kernel=sparse") {
			continue
		}
		dense, ok := out.Benchmarks[strings.Replace(name, "kernel=sparse", "kernel=dense", 1)]
		if !ok || sparse.NsPerOp == 0 {
			continue
		}
		if out.Speedup == nil {
			out.Speedup = map[string]float64{}
		}
		out.Speedup[strings.Replace(name, "kernel=sparse", "kernel=sparse-vs-dense", 1)] = dense.NsPerOp / sparse.NsPerOp
	}
	// Mode axis: pair each mode=settled epoch row with its mode=dense
	// sibling (same users/interactions/shards) and report dense/settled —
	// the sub-linear epoch tail's win in the quiescent regime.
	for name, settled := range out.Benchmarks {
		if !strings.Contains(name, "mode=settled") {
			continue
		}
		dense, ok := out.Benchmarks[strings.Replace(name, "mode=settled", "mode=dense", 1)]
		if !ok || settled.NsPerOp == 0 {
			continue
		}
		if out.Speedup == nil {
			out.Speedup = map[string]float64{}
		}
		out.Speedup[strings.Replace(name, "mode=settled", "mode=dense-vs-settled", 1)] = dense.NsPerOp / settled.NsPerOp
	}
	// Topology axis: pair each topology=workers-K row with its
	// topology=local sibling and report local/cluster.
	for name, clustered := range out.Benchmarks {
		tok := topologyCase.FindString(name)
		if tok == "" {
			continue
		}
		local, ok := out.Benchmarks[strings.Replace(name, tok, "topology=local", 1)]
		if !ok || clustered.NsPerOp == 0 {
			continue
		}
		if out.Speedup == nil {
			out.Speedup = map[string]float64{}
		}
		key := strings.Replace(name, tok, "topology=local-vs-"+strings.TrimPrefix(tok, "topology="), 1)
		out.Speedup[key] = local.NsPerOp / clustered.NsPerOp
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
