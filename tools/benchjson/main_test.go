package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// benchOutput is a condensed real `go test -bench` transcript covering the
// row shapes benchjson understands: the shards axis (epoch bench), the
// workers axis (sweep bench), custom metrics (serving bench), and the
// topology axis (cluster bench).
const benchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShardedEpoch/users=1000/shards=1-8         	      10	 100000000 ns/op
BenchmarkShardedEpoch/users=1000/shards=4-8         	      40	  25000000 ns/op
BenchmarkServing/users=200/shards=1-8               	    6862	     99410 ns/op	    198732 p50-ns	  13690565 p99-ns	     10071 qps
BenchmarkSweep/grid=5x5/workers=1-8                 	       5	 200000000 ns/op
BenchmarkSweep/grid=5x5/workers=4-8                 	      20	  50000000 ns/op
BenchmarkCluster/users=100/topology=local-8         	      30	  40000000 ns/op
BenchmarkCluster/users=100/topology=workers2        	      24	  50000000 ns/op
BenchmarkShardedEpoch/users=500000/interactions=20000/shards=4/mode=dense-8 	       2	 600000000 ns/op
BenchmarkShardedEpoch/users=500000/interactions=20000/shards=4/mode=settled-8 	      20	  60000000 ns/op
PASS
ok  	repro	2.482s
`

func TestProcess(t *testing.T) {
	var sb strings.Builder
	if err := process(strings.NewReader(benchOutput), &sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Benchmarks map[string]struct {
			Iterations int                `json:"iterations"`
			NsPerOp    float64            `json:"ns_per_op"`
			Metrics    map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
		Speedup map[string]float64 `json:"speedup"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 9 {
		t.Fatalf("parsed %d rows, want 9", len(out.Benchmarks))
	}

	epoch := out.Benchmarks["ShardedEpoch/users=1000/shards=4"]
	if epoch.Iterations != 40 || epoch.NsPerOp != 25000000 {
		t.Fatalf("epoch row = %+v", epoch)
	}
	if got := out.Speedup["users=1000/shards=4"]; got != 4 {
		t.Fatalf("shard speedup = %v, want 4", got)
	}
	if got := out.Speedup["Sweep/grid=5x5/workers=4"]; got != 4 {
		t.Fatalf("worker speedup = %v, want 4", got)
	}
	if got := out.Speedup["Cluster/users=100/topology=local-vs-workers2"]; got != 0.8 {
		t.Fatalf("topology speedup = %v, want 0.8", got)
	}
	if got := out.Speedup["ShardedEpoch/users=500000/interactions=20000/shards=4/mode=dense-vs-settled"]; got != 10 {
		t.Fatalf("mode speedup = %v, want 10", got)
	}

	serving := out.Benchmarks["Serving/users=200/shards=1"]
	want := map[string]float64{"p50-ns": 198732, "p99-ns": 13690565, "qps": 10071}
	for unit, v := range want {
		if serving.Metrics[unit] != v {
			t.Fatalf("metric %s = %v, want %v (row %+v)", unit, serving.Metrics[unit], v, serving)
		}
	}
	if _, ok := serving.Metrics["ns/op"]; ok {
		t.Fatal("ns/op duplicated into the metrics map")
	}

	// Rows without custom metrics must omit the map entirely.
	if epoch.Metrics != nil {
		t.Fatalf("plain row grew metrics: %+v", epoch.Metrics)
	}
}

func TestProcessEmptyInput(t *testing.T) {
	var sb strings.Builder
	if err := process(strings.NewReader("no benchmarks here\n"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"benchmarks": {}`) {
		t.Fatalf("empty input should produce an empty document:\n%s", sb.String())
	}
}
