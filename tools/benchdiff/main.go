// Command benchdiff compares a freshly produced benchjson document against
// a committed baseline and fails (exit 1) on regressions, so CI gates perf
// instead of merely recording it.
//
//	go test -run '^$' -bench BenchmarkShardedEpoch . | go run ./tools/benchjson > BENCH_epoch.json
//	go run ./tools/benchdiff -baseline bench/baseline/BENCH_epoch.json -fresh BENCH_epoch.json
//
// Gating rules, per row recorded in the baseline:
//
//   - ns_per_op regresses when fresh > baseline × (1 + threshold); lower is
//     better. Default threshold 20%.
//   - speedup entries regress when fresh < baseline × (1 − threshold);
//     higher is better.
//   - the qps metric (the serving benchmark's throughput headline) gates
//     like speedup.
//   - every other custom metric — latency quantiles (p50-ns, p99-ns),
//     snapshot-bytes, allocator columns — is advisory: printed, never fatal,
//     because single-run quantiles on shared CI hardware swing far beyond
//     any honest threshold. -gate-all-metrics promotes them.
//
// Rows present only in the fresh document are fine (new benchmarks don't
// need a baseline yet); rows present only in the baseline warn, or fail
// under -require-all. Update baselines deliberately by regenerating the
// files under bench/baseline/.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

type row struct {
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	Benchmarks map[string]row     `json:"benchmarks"`
	Speedup    map[string]float64 `json:"speedup,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		baselinePath = fs.String("baseline", "", "committed benchjson document (required)")
		freshPath    = fs.String("fresh", "", "freshly produced benchjson document (required)")
		threshold    = fs.Float64("threshold", 0.20, "fractional regression tolerance")
		requireAll   = fs.Bool("require-all", false, "fail when a baseline row is missing from the fresh document")
		gateAll      = fs.Bool("gate-all-metrics", false, "gate advisory metrics (latency quantiles etc.) too")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" || *freshPath == "" {
		return fmt.Errorf("both -baseline and -fresh are required")
	}
	if *threshold <= 0 {
		return fmt.Errorf("threshold must be positive, got %v", *threshold)
	}
	base, err := load(*baselinePath)
	if err != nil {
		return err
	}
	fresh, err := load(*freshPath)
	if err != nil {
		return err
	}

	var regressions, warnings []string
	note := func(fatal bool, format string, a ...any) {
		msg := fmt.Sprintf(format, a...)
		if fatal {
			regressions = append(regressions, msg)
		} else {
			warnings = append(warnings, msg)
		}
	}

	// lowerIsBetter gate: fails when fresh exceeds base by the threshold.
	checkLower := func(fatal bool, label string, baseV, freshV float64) {
		if baseV <= 0 {
			return
		}
		ratio := freshV / baseV
		if ratio > 1+*threshold {
			note(fatal, "%s: %.4g -> %.4g (%.1f%% slower, tolerance %.0f%%)",
				label, baseV, freshV, (ratio-1)*100, *threshold*100)
		}
	}
	// higherIsBetter gate: fails when fresh falls below base by the threshold.
	checkHigher := func(fatal bool, label string, baseV, freshV float64) {
		if baseV <= 0 {
			return
		}
		ratio := freshV / baseV
		if ratio < 1-*threshold {
			note(fatal, "%s: %.4g -> %.4g (%.1f%% worse, tolerance %.0f%%)",
				label, baseV, freshV, (1-ratio)*100, *threshold*100)
		}
	}

	for _, name := range sortedKeys(base.Benchmarks) {
		b := base.Benchmarks[name]
		f, ok := fresh.Benchmarks[name]
		if !ok {
			note(*requireAll, "row %q in baseline but missing from fresh run", name)
			continue
		}
		checkLower(true, name+" ns/op", b.NsPerOp, f.NsPerOp)
		for _, unit := range sortedKeys(b.Metrics) {
			fv, ok := f.Metrics[unit]
			if !ok {
				note(false, "metric %s of %q missing from fresh run", unit, name)
				continue
			}
			label := name + " " + unit
			switch {
			case unit == "qps":
				checkHigher(true, label, b.Metrics[unit], fv)
			case higherIsBetter(unit):
				checkHigher(*gateAll, label, b.Metrics[unit], fv)
			default:
				checkLower(*gateAll, label, b.Metrics[unit], fv)
			}
		}
	}
	for _, key := range sortedKeys(base.Speedup) {
		fv, ok := fresh.Speedup[key]
		if !ok {
			note(*requireAll, "speedup %q in baseline but missing from fresh run", key)
			continue
		}
		checkHigher(true, "speedup "+key, base.Speedup[key], fv)
	}

	for _, msg := range warnings {
		fmt.Fprintf(w, "benchdiff: warning: %s\n", msg)
	}
	if len(regressions) > 0 {
		for _, msg := range regressions {
			fmt.Fprintf(w, "benchdiff: REGRESSION: %s\n", msg)
		}
		return fmt.Errorf("%d regression(s) beyond the %.0f%% tolerance", len(regressions), *threshold*100)
	}
	fmt.Fprintf(w, "benchdiff: %d baseline row(s) within %.0f%% of %s\n",
		len(base.Benchmarks)+len(base.Speedup), *threshold*100, *freshPath)
	return nil
}

// higherIsBetter classifies advisory metric direction by unit name: rates
// are good when they go up, everything else (latencies, sizes, counts) when
// it goes down.
func higherIsBetter(unit string) bool {
	return strings.Contains(unit, "qps") || strings.Contains(unit, "/s") || strings.Contains(unit, "speedup")
}

func load(path string) (doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return doc{}, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return doc{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Benchmarks) == 0 && len(d.Speedup) == 0 {
		return doc{}, fmt.Errorf("%s: no benchmark rows", path)
	}
	return d, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
