package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineDoc = `{
  "benchmarks": {
    "Epoch/users=1000/shards=4": {"iterations": 100, "ns_per_op": 1000000},
    "Serving/users=200/shards=4": {"iterations": 5000, "ns_per_op": 90000,
      "metrics": {"qps": 10000, "p50-ns": 200000, "p99-ns": 9000000}}
  },
  "speedup": {"users=1000/shards=4": 3.0}
}`

func diff(t *testing.T, fresh string, extra ...string) (string, error) {
	t.Helper()
	base := writeDoc(t, "base.json", baselineDoc)
	fp := writeDoc(t, "fresh.json", fresh)
	var sb strings.Builder
	err := run(append([]string{"-baseline", base, "-fresh", fp}, extra...), &sb)
	return sb.String(), err
}

func TestWithinToleranceOK(t *testing.T) {
	out, err := diff(t, `{
  "benchmarks": {
    "Epoch/users=1000/shards=4": {"iterations": 100, "ns_per_op": 1100000},
    "Serving/users=200/shards=4": {"iterations": 5000, "ns_per_op": 95000,
      "metrics": {"qps": 9500, "p50-ns": 210000, "p99-ns": 9500000}},
    "Brand/new=row": {"iterations": 1, "ns_per_op": 5}
  },
  "speedup": {"users=1000/shards=4": 2.9}
}`)
	if err != nil {
		t.Fatalf("within-tolerance diff failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "within 20%") {
		t.Fatalf("missing summary:\n%s", out)
	}
}

func TestNsPerOpRegressionFails(t *testing.T) {
	out, err := diff(t, `{
  "benchmarks": {
    "Epoch/users=1000/shards=4": {"iterations": 100, "ns_per_op": 1300000},
    "Serving/users=200/shards=4": {"iterations": 5000, "ns_per_op": 90000,
      "metrics": {"qps": 10000, "p50-ns": 200000, "p99-ns": 9000000}}
  },
  "speedup": {"users=1000/shards=4": 3.0}
}`)
	if err == nil {
		t.Fatalf("30%% ns/op regression passed:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "Epoch/users=1000/shards=4 ns/op") {
		t.Fatalf("regression not named:\n%s", out)
	}
}

func TestQPSRegressionFails(t *testing.T) {
	out, err := diff(t, `{
  "benchmarks": {
    "Epoch/users=1000/shards=4": {"iterations": 100, "ns_per_op": 1000000},
    "Serving/users=200/shards=4": {"iterations": 5000, "ns_per_op": 90000,
      "metrics": {"qps": 6000, "p50-ns": 200000, "p99-ns": 9000000}}
  },
  "speedup": {"users=1000/shards=4": 3.0}
}`)
	if err == nil {
		t.Fatalf("40%% qps drop passed:\n%s", out)
	}
	if !strings.Contains(out, "qps") {
		t.Fatalf("qps regression not named:\n%s", out)
	}
}

func TestSpeedupRegressionFails(t *testing.T) {
	out, err := diff(t, `{
  "benchmarks": {
    "Epoch/users=1000/shards=4": {"iterations": 100, "ns_per_op": 1000000},
    "Serving/users=200/shards=4": {"iterations": 5000, "ns_per_op": 90000,
      "metrics": {"qps": 10000, "p50-ns": 200000, "p99-ns": 9000000}}
  },
  "speedup": {"users=1000/shards=4": 1.5}
}`)
	if err == nil {
		t.Fatalf("halved speedup passed:\n%s", out)
	}
}

// TestQuantilesAdvisoryByDefault: a wild p99 swing alone must not fail the
// gate (single-run quantiles on shared hardware are noise), but
// -gate-all-metrics promotes it.
func TestQuantilesAdvisoryByDefault(t *testing.T) {
	fresh := `{
  "benchmarks": {
    "Epoch/users=1000/shards=4": {"iterations": 100, "ns_per_op": 1000000},
    "Serving/users=200/shards=4": {"iterations": 5000, "ns_per_op": 90000,
      "metrics": {"qps": 10000, "p50-ns": 200000, "p99-ns": 30000000}}
  },
  "speedup": {"users=1000/shards=4": 3.0}
}`
	if out, err := diff(t, fresh); err != nil {
		t.Fatalf("p99 noise failed the default gate: %v\n%s", err, out)
	}
	if out, err := diff(t, fresh, "-gate-all-metrics"); err == nil {
		t.Fatalf("p99 3x regression passed under -gate-all-metrics:\n%s", out)
	}
}

func TestMissingRowWarnsOrFails(t *testing.T) {
	fresh := `{
  "benchmarks": {
    "Serving/users=200/shards=4": {"iterations": 5000, "ns_per_op": 90000,
      "metrics": {"qps": 10000, "p50-ns": 200000, "p99-ns": 9000000}}
  },
  "speedup": {"users=1000/shards=4": 3.0}
}`
	out, err := diff(t, fresh)
	if err != nil {
		t.Fatalf("missing row failed the default gate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "warning") {
		t.Fatalf("missing row not warned about:\n%s", out)
	}
	if out, err := diff(t, fresh, "-require-all"); err == nil {
		t.Fatalf("missing row passed under -require-all:\n%s", out)
	}
}

func TestBadInputs(t *testing.T) {
	base := writeDoc(t, "base.json", baselineDoc)
	empty := writeDoc(t, "empty.json", `{"benchmarks": {}}`)
	garbage := writeDoc(t, "garbage.json", `not json`)
	cases := [][]string{
		{},
		{"-baseline", base},
		{"-baseline", base, "-fresh", filepath.Join(t.TempDir(), "missing.json")},
		{"-baseline", base, "-fresh", empty},
		{"-baseline", base, "-fresh", garbage},
		{"-baseline", base, "-fresh", base, "-threshold", "-1"},
		{"-bogus"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
	// Identity diff always passes.
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-fresh", base}, &sb); err != nil {
		t.Fatalf("identity diff failed: %v", err)
	}
}
