// Command trustworker is one worker process of a trustmaster cluster: it
// registers with the master, builds an engine replica from the scenario the
// master streams back, and serves scatter/SpMV phase requests until the
// master shuts the cluster down (clean exit) or the connection drops.
//
//	trustworker -master 127.0.0.1:9700 -name w1
//
// SIGINT/SIGTERM exit cleanly; the master notices over its next heartbeat
// or phase deadline and recomputes this worker's share locally, so killing
// a worker never changes the run's results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trustworker:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trustworker", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		master  = fs.String("master", "127.0.0.1:9700", "trustmaster registration address")
		name    = fs.String("name", "", "unique worker name (default host-pid)")
		timeout = fs.Duration("dial-timeout", 10*time.Second, "master connection timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	conn, err := cluster.DialTCP(*master, *timeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trustworker: %q serving %s\n", *name, *master)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cluster.RunWorker(conn, *name) }()
	select {
	case <-sig:
		// Deliberate local stop: tear the connection down (the master falls
		// back to local computation) and exit cleanly.
		conn.Close()
		<-done
		fmt.Fprintf(w, "trustworker: %q interrupted, exiting\n", *name)
		return nil
	case err := <-done:
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "trustworker: %q released by master, exiting\n", *name)
		return nil
	}
}
