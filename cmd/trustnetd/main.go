// Command trustnetd serves a live trust network: it assembles a scenario's
// engine, advances coupling epochs on a background loop, and answers
// reputation queries over an HTTP/JSON API while the simulation runs.
//
//	trustnetd -scenario baseline
//	curl localhost:8321/v1/top?k=5
//	curl -X POST localhost:8321/v1/reports -d '{"rater":4,"ratee":9,"value":1}'
//	curl -N 'localhost:8321/v1/epochs/stream?limit=3'
//	curl -o run.snap localhost:8321/v1/snapshot   # resumes under trustsim -resume
//
// Reports submitted over the API are queued and applied at the next epoch
// boundary, so a served run stays deterministic: the same seed and the same
// epoch-indexed arrival schedule reproduce the equivalent batch run bit for
// bit (GET /v1/reports/log exports the schedule for replay).
//
// SIGINT/SIGTERM stop the epoch loop between rounds, drain open requests,
// and exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/trustnet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "trustnetd:", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored for tests: it blocks until ctx is
// cancelled (or the listener/loop fails) and calls ready with the base URL
// once the API is accepting connections.
func run(ctx context.Context, args []string, w io.Writer, ready func(baseURL string)) error {
	fs := flag.NewFlagSet("trustnetd", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		scenarioRef = fs.String("scenario", "baseline", "registered scenario name or JSON spec file")
		addr        = fs.String("addr", "127.0.0.1:8321", "HTTP listen address")
		maxEpochs   = fs.Int("max-epochs", 0, "epoch budget (0 = advance until stopped; queries outlive the budget)")
		interval    = fs.Duration("epoch-interval", 250*time.Millisecond, "pause between epochs")
		shards      = fs.Int("shards", 0, "scatter-gather shards (0 = scenario default; never changes results)")
		manual      = fs.Bool("manual", false, "no background loop; epochs advance only via POST /v1/advance")
		resume      = fs.String("resume", "", "restore the engine from a snapshot file before serving")
		pprofOn     = fs.Bool("pprof", false, "mount Go pprof handlers at /debug/pprof/ (profiling a live daemon)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc, err := trustnet.LoadScenario(*scenarioRef)
	if err != nil {
		return err
	}
	if *shards > 0 {
		sc.Shards = *shards
	}
	eng, err := sc.NewEngine()
	if err != nil {
		return err
	}
	if *resume != "" {
		if err := eng.RestoreFromFile(*resume); err != nil {
			return err
		}
	}

	srv, err := serve.New(serve.Config{
		Engine:        eng,
		Schedule:      sc.Schedule,
		MaxEpochs:     *maxEpochs,
		EpochInterval: *interval,
		Manual:        *manual,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if *pprofOn {
		handler = withPprof(handler)
	}
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	if err := srv.Start(ctx); err != nil {
		httpSrv.Close()
		return err
	}
	baseURL := "http://" + ln.Addr().String()
	mode := "loop"
	if *manual {
		mode = "manual"
	}
	fmt.Fprintf(w, "trustnetd: scenario %q (%d peers, %s, %d shards) from epoch %d, %s mode\n",
		sc.Name, eng.Peers(), eng.Mechanism().Name(), eng.Shards(), eng.EpochIndex(), mode)
	fmt.Fprintf(w, "trustnetd: listening on %s\n", baseURL)
	if ready != nil {
		ready(baseURL)
	}

	srvDone := srv.Done()
	for {
		select {
		case <-ctx.Done():
			return shutdown(httpSrv, srv, w)
		case err := <-serveErr:
			if errors.Is(err, http.ErrServerClosed) {
				err = nil
			}
			return err
		case <-srvDone:
			if err := srv.Err(); err != nil {
				shutdown(httpSrv, srv, w)
				return err
			}
			// Budget exhausted cleanly: the view stays queryable until a
			// signal arrives.
			fmt.Fprintf(w, "trustnetd: epoch budget exhausted at epoch %d; still serving queries\n", srv.View().Epoch)
			srvDone = nil
		}
	}
}

// withPprof mounts the Go runtime profiling endpoints in front of the API
// handler. Opt-in only (-pprof): the endpoints expose process internals, so
// they are off by default and should stay off on any non-loopback address.
func withPprof(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", api)
	return mux
}

// shutdown drains the HTTP server: graceful with a deadline, then forced,
// so lingering SSE streams cannot hold the process open.
func shutdown(httpSrv *http.Server, srv *serve.Server, w io.Writer) error {
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shctx); err != nil {
		httpSrv.Close()
	}
	fmt.Fprintf(w, "trustnetd: stopped at epoch %d\n", srv.View().Epoch)
	return nil
}
