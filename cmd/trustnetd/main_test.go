package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startDaemon launches run in a goroutine and returns its base URL plus a
// stop function that cancels the daemon and returns its exit error.
func startDaemon(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	readyCh := make(chan string, 1)
	errCh := make(chan error, 1)
	var out syncBuffer
	go func() {
		errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &out, func(u string) { readyCh <- u })
	}()
	select {
	case u := <-readyCh:
		return u, func() error {
			cancel()
			select {
			case err := <-errCh:
				return err
			case <-time.After(30 * time.Second):
				t.Fatal("daemon did not stop after cancel")
				return nil
			}
		}
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v\noutput:\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonEndToEnd is the in-process twin of the CI smoke job: start the
// daemon, submit a report, query a score, stream an epoch summary, download
// a snapshot, and shut down cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	url, stop := startDaemon(t, "-scenario", "baseline", "-epoch-interval", "5ms")
	client := &http.Client{Timeout: 30 * time.Second}

	// Liveness.
	resp, err := client.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Submit a report.
	resp, err = client.Post(url+"/v1/reports", "application/json",
		strings.NewReader(`{"rater":4,"ratee":9,"value":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("report: %d", resp.StatusCode)
	}

	// Query a score.
	resp, err = client.Get(url + "/v1/scores/9")
	if err != nil {
		t.Fatal(err)
	}
	var score struct {
		User  int     `json:"user"`
		Score float64 `json:"score"`
		Rank  int     `json:"rank"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&score); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if score.User != 9 || score.Rank < 1 {
		t.Fatalf("score reply: %+v", score)
	}

	// Stream one epoch summary.
	resp, err = client.Get(url + "/v1/epochs/stream?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var sawEvent bool
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			sawEvent = true
		}
	}
	resp.Body.Close()
	if !sawEvent {
		t.Fatal("stream produced no epoch event")
	}

	// Snapshot.
	resp, err = client.Get(url + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.CreateTemp(t.TempDir(), "snap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blob.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	blob.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Trustnet-Epoch") == "" {
		t.Fatalf("snapshot: status %d, epoch header %q", resp.StatusCode, resp.Header.Get("X-Trustnet-Epoch"))
	}

	if err := stop(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

// TestDaemonResumeFromSnapshot: a snapshot downloaded from one daemon boots
// another, which resumes from the recorded epoch.
func TestDaemonResumeFromSnapshot(t *testing.T) {
	url, stop := startDaemon(t, "-scenario", "baseline", "-manual")
	client := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < 3; i++ {
		resp, err := client.Post(url+"/v1/advance", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("advance %d: %d", i, resp.StatusCode)
		}
	}
	resp, err := client.Get(url + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "run.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	f.Close()
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	url2, stop2 := startDaemon(t, "-scenario", "baseline", "-manual", "-resume", snap)
	resp, err = client.Get(url2 + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Epoch int `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Epoch != 3 {
		t.Fatalf("resumed daemon reports epoch %d, want 3", health.Epoch)
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonBudgetExhaustedKeepsServing: a daemon whose budget runs out
// stays up for queries and still exits 0 on signal.
func TestDaemonBudgetExhaustedKeepsServing(t *testing.T) {
	url, stop := startDaemon(t, "-scenario", "baseline", "-max-epochs", "2", "-epoch-interval", "0s")
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(url + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Epoch int `json:"epoch"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if health.Epoch == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("budget never exhausted (epoch %d)", health.Epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Still answering after the loop ended.
	resp, err := client.Get(url + "/v1/top?k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("top after budget end: %d", resp.StatusCode)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-scenario", "no-such-scenario"},
		{"-bogus"},
		{"-resume", filepath.Join(t.TempDir(), "missing.snap")},
	}
	for _, args := range cases {
		var out syncBuffer
		err := run(context.Background(), append([]string{"-addr", "127.0.0.1:0"}, args...), &out, nil)
		if err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestDaemonOldSnapshotClearError(t *testing.T) {
	type v1State struct{ Engine string }
	type v1Snapshot struct {
		Version   int
		Peers     int
		Mechanism string
		Epoch     int
		State     v1State
	}
	snap := filepath.Join(t.TempDir(), "old.snap")
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v1Snapshot{Version: 1, Peers: 100, Mechanism: "eigentrust"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out syncBuffer
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-resume", snap}, &out, nil)
	if err == nil {
		t.Fatal("old-version snapshot accepted")
	}
	if !strings.Contains(err.Error(), "snapshot version mismatch (got 1, want 2)") {
		t.Fatalf("resume error %q does not name the version mismatch", err)
	}
}
