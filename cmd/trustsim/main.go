// Command trustsim runs one configurable scenario of the three-facet trust
// model and prints the facet metrics, the trust towards the system, and the
// coupled-dynamics trajectory.
//
// Example:
//
//	trustsim -peers 200 -malicious 0.3 -mechanism eigentrust -disclosure 0.8 -epochs 10
//
// Scenarios also run by name (the registered built-ins: baseline,
// quickstart, filesharing, socialfeed, churnstorm, tradeoff) or from a
// declarative JSON spec file, schedule and all:
//
//	trustsim -scenario churnstorm
//	trustsim -scenario my-study.json
//
// Long runs can be checkpointed and resumed without perturbing a single
// draw — the resumed trajectory is bit-for-bit the uninterrupted one:
//
//	trustsim -epochs 5 -checkpoint run.snap
//	trustsim -epochs 5 -resume run.snap
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/trustnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trustsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trustsim", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		scenarioRef = fs.String("scenario", "", "run a registered scenario by name, or a JSON spec file (overrides the flag-built scenario)")

		peers      = fs.Int("peers", 200, "population size")
		malicious  = fs.Float64("malicious", 0.3, "malicious fraction [0,1]")
		selfish    = fs.Float64("selfish", 0, "selfish free-rider fraction [0,1]")
		mechanism  = fs.String("mechanism", "eigentrust", "reputation mechanism: eigentrust|powertrust|trustme|none")
		disclosure = fs.Float64("disclosure", 0.8, "base disclosure level (0,1]")
		gate       = fs.Float64("gate", 0, "privacy trust-gate strictness [0,1)")
		epochs     = fs.Int("epochs", 10, "coupling epochs")
		rounds     = fs.Int("rounds", 8, "workload rounds per epoch")
		seed       = fs.Uint64("seed", 1, "random seed")
		ctxName    = fs.String("context", "balanced", "weight context: balanced|privacy|performance|marketplace")
		coupled    = fs.Bool("coupled", true, "enable the §3 feedback loops")
		shards     = fs.Int("shards", runtime.GOMAXPROCS(0), "parallel epoch shards (identical results for any count)")
		checkpoint = fs.String("checkpoint", "", "write an engine snapshot to this file after the run")
		resume     = fs.String("resume", "", "restore the engine from this snapshot before running (scenario flags must match the checkpointed run)")
		history    = fs.String("history", "", "write the epoch history to this file as JSON (cluster-equivalence diffing)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file after the run (go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	if *scenarioRef != "" {
		return runScenario(*scenarioRef, *shards, *checkpoint, *resume, *history, w)
	}
	if *malicious+*selfish > 1 {
		return fmt.Errorf("malicious + selfish fractions exceed 1")
	}

	var factory trustnet.MechanismFactory
	switch *mechanism {
	case "eigentrust":
		factory = trustnet.EigenTrust(trustnet.EigenTrustConfig{Pretrusted: []int{0, 1, 2}})
	case "powertrust":
		factory = trustnet.PowerTrust(trustnet.PowerTrustConfig{})
	case "trustme":
		factory = trustnet.TrustMe(trustnet.TrustMeConfig{})
	case "none":
		factory = trustnet.NoReputation()
	default:
		return fmt.Errorf("unknown mechanism %q", *mechanism)
	}

	var weightCtx trustnet.AppContext
	switch *ctxName {
	case "balanced":
		weightCtx = trustnet.Balanced
	case "privacy":
		weightCtx = trustnet.PrivacyCritical
	case "performance":
		weightCtx = trustnet.PerformanceCritical
	case "marketplace":
		weightCtx = trustnet.MarketplaceContext
	default:
		return fmt.Errorf("unknown context %q", *ctxName)
	}

	eng, err := trustnet.New(
		trustnet.WithPeers(*peers),
		trustnet.WithRNGSeed(*seed),
		trustnet.WithMix(trustnet.Mix{
			Fractions: map[trustnet.Class]float64{
				trustnet.Honest:    1 - *malicious - *selfish,
				trustnet.Malicious: *malicious,
				trustnet.Selfish:   *selfish,
			},
			ForceHonest: []int{0, 1, 2},
		}),
		trustnet.WithReputationMechanism(factory),
		trustnet.WithPrivacyPolicy(trustnet.PrivacyPolicy{Disclosure: *disclosure, TrustGate: *gate}),
		trustnet.WithRecomputeEvery(2),
		trustnet.WithAppContext(weightCtx),
		trustnet.WithCoupling(*coupled),
		trustnet.WithEpochRounds(*rounds),
		trustnet.WithShards(*shards),
	)
	if err != nil {
		return err
	}
	if *resume != "" {
		if err := eng.RestoreFromFile(*resume); err != nil {
			return err
		}
	}
	hist, err := eng.Run(context.Background(), *epochs)
	if err != nil {
		return err
	}
	if *checkpoint != "" {
		if err := checkpointEngine(eng, *checkpoint); err != nil {
			return err
		}
	}
	if *history != "" {
		if err := writeHistory(eng.History(), *history); err != nil {
			return err
		}
	}

	tab := trustnet.NewTable(
		fmt.Sprintf("trustsim: %d peers, %.0f%% malicious, %s, context %s",
			*peers, *malicious*100, eng.Mechanism().Name(), weightCtx),
		"epoch", "trust", "satisfaction", "rep-power", "privacy", "disclosure", "honesty", "bad-rate")
	for _, e := range hist {
		tab.AddRow(e.Epoch, e.Trust, e.Satisfaction, e.Reputation, e.Privacy, e.Disclosure, e.Honesty, e.BadRate)
	}
	tab.Render(w)

	fmt.Fprintf(w, "\nfinal global trust: %.4f\n", eng.GlobalTrust())
	fmt.Fprintf(w, "system trusted (median >= 0.5): %v; strictly trusted (p10 >= 0.5): %v\n",
		eng.SystemTrusted(0.5, 0.5), eng.SystemTrusted(0.5, 0.1))
	sum := eng.Summary()
	fmt.Fprintf(w, "reputation rank accuracy (tau): %.4f; feedback share rate: %.4f\n", sum.Tau, sum.ShareRate)
	return nil
}

// startProfiles begins CPU profiling and/or arranges a heap profile write,
// per the -cpuprofile/-memprofile flags. The returned stop function is safe
// to call unconditionally; profile-file errors after the run are reported to
// stderr because the run itself already succeeded.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trustsim: cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "trustsim: memprofile:", err)
				return
			}
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "trustsim: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trustsim: memprofile:", err)
			}
		}
	}, nil
}

// runScenario resolves a declarative scenario (registered name or JSON
// spec file), runs it end to end — schedule included — and prints the same
// trajectory report as a flag-built run. Shards only reschedule work, so
// the -shards flag may be applied without touching the result.
// -checkpoint/-resume work here too: -resume restores the engine before
// running (the scenario then budgets sc.Epochs *further* epochs, with
// schedule entries keyed by absolute epoch index so the remaining ones
// still fire), which is how a trustnetd /v1/snapshot download is continued
// offline.
func runScenario(ref string, shards int, checkpoint, resume, history string, w io.Writer) error {
	sc, err := trustnet.LoadScenario(ref)
	if err != nil {
		return err
	}
	if sc.Epochs <= 0 {
		return fmt.Errorf("trustsim: scenario %q has no epochs to run (set Epochs > 0)", sc.Name)
	}
	if sc.Shards == 0 && shards > 0 {
		sc.Shards = shards
	}
	eng, err := sc.NewEngine()
	if err != nil {
		return err
	}
	if resume != "" {
		if err := eng.RestoreFromFile(resume); err != nil {
			return err
		}
	}
	prior := len(eng.History())
	s, err := eng.Session(context.Background(), trustnet.WithMaxEpochs(sc.Epochs), trustnet.WithSchedule(sc.Schedule))
	if err != nil {
		return err
	}
	for _, err := range s.Epochs() {
		if err != nil {
			return err
		}
	}
	hist := eng.History()[prior:]
	if checkpoint != "" {
		if err := checkpointEngine(eng, checkpoint); err != nil {
			return err
		}
	}
	if history != "" {
		if err := writeHistory(eng.History(), history); err != nil {
			return err
		}
	}
	title := fmt.Sprintf("trustsim scenario %q: %d peers, %s, %d epochs",
		sc.Name, eng.Peers(), eng.Mechanism().Name(), sc.Epochs)
	if sc.Description != "" {
		fmt.Fprintf(w, "%s\n", sc.Description)
	}
	tab := trustnet.NewTable(title,
		"epoch", "trust", "satisfaction", "rep-power", "privacy", "disclosure", "honesty", "bad-rate")
	for _, e := range hist {
		tab.AddRow(e.Epoch, e.Trust, e.Satisfaction, e.Reputation, e.Privacy, e.Disclosure, e.Honesty, e.BadRate)
	}
	tab.Render(w)
	fmt.Fprintf(w, "\nfinal global trust: %.4f\n", eng.GlobalTrust())
	fmt.Fprintf(w, "system trusted (median >= 0.5): %v; strictly trusted (p10 >= 0.5): %v\n",
		eng.SystemTrusted(0.5, 0.5), eng.SystemTrusted(0.5, 0.1))
	sum := eng.Summary()
	fmt.Fprintf(w, "reputation rank accuracy (tau): %.4f; feedback share rate: %.4f\n", sum.Tau, sum.ShareRate)
	return nil
}

// checkpointEngine snapshots the engine's full state to a file; a later run
// with identical scenario flags and -resume continues bit-for-bit as if
// never interrupted.
func checkpointEngine(eng *trustnet.Engine, path string) error {
	snap, err := eng.Snapshot()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := snap.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// writeHistory serializes the epoch history to a file as JSON — the
// artifact the cluster-smoke CI job diffs byte-for-byte between
// single-process and master/worker runs of the same scenario. JSON, not
// gob: JSON floats use the shortest representation that round-trips, so
// byte equality proves bit equality — while gob assigns wire type ids from
// a process-global registry, so two binaries that built other gob types
// first emit different bytes for identical values.
func writeHistory(hist []trustnet.EpochStats, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(hist); err != nil {
		f.Close()
		return fmt.Errorf("history: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	return nil
}
