// Command trustsim runs one configurable scenario of the three-facet trust
// model and prints the facet metrics, the trust towards the system, and the
// coupled-dynamics trajectory.
//
// Example:
//
//	trustsim -peers 200 -malicious 0.3 -mechanism eigentrust -disclosure 0.8 -epochs 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/reputation"
	"repro/internal/reputation/eigentrust"
	"repro/internal/reputation/powertrust"
	"repro/internal/reputation/trustme"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trustsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trustsim", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		peers      = fs.Int("peers", 200, "population size")
		malicious  = fs.Float64("malicious", 0.3, "malicious fraction [0,1]")
		selfish    = fs.Float64("selfish", 0, "selfish free-rider fraction [0,1]")
		mechanism  = fs.String("mechanism", "eigentrust", "reputation mechanism: eigentrust|powertrust|trustme|none")
		disclosure = fs.Float64("disclosure", 0.8, "base disclosure level (0,1]")
		gate       = fs.Float64("gate", 0, "privacy trust-gate strictness [0,1)")
		epochs     = fs.Int("epochs", 10, "coupling epochs")
		rounds     = fs.Int("rounds", 8, "workload rounds per epoch")
		seed       = fs.Uint64("seed", 1, "random seed")
		context    = fs.String("context", "balanced", "weight context: balanced|privacy|performance|marketplace")
		coupled    = fs.Bool("coupled", true, "enable the §3 feedback loops")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *malicious+*selfish > 1 {
		return fmt.Errorf("malicious + selfish fractions exceed 1")
	}

	var mech reputation.Mechanism
	var err error
	switch *mechanism {
	case "eigentrust":
		mech, err = eigentrust.New(eigentrust.Config{N: *peers, Pretrusted: []int{0, 1, 2}})
	case "powertrust":
		mech, err = powertrust.New(powertrust.Config{N: *peers})
	case "trustme":
		mech, err = trustme.New(trustme.Config{N: *peers})
	case "none":
		mech = reputation.NewNone(*peers)
	default:
		return fmt.Errorf("unknown mechanism %q", *mechanism)
	}
	if err != nil {
		return err
	}

	var weights core.Weights
	switch *context {
	case "balanced":
		weights = core.ContextWeights(core.Balanced)
	case "privacy":
		weights = core.ContextWeights(core.PrivacyCritical)
	case "performance":
		weights = core.ContextWeights(core.PerformanceCritical)
	case "marketplace":
		weights = core.ContextWeights(core.MarketplaceContext)
	default:
		return fmt.Errorf("unknown context %q", *context)
	}

	dyn, err := core.NewDynamics(core.DynamicsConfig{
		Workload: workload.Config{
			Seed:     *seed,
			NumPeers: *peers,
			Mix: adversary.Mix{
				Fractions: map[adversary.Class]float64{
					adversary.Honest:    1 - *malicious - *selfish,
					adversary.Malicious: *malicious,
					adversary.Selfish:   *selfish,
				},
				ForceHonest: []int{0, 1, 2},
			},
			Disclosure:     *disclosure,
			TrustGate:      *gate,
			RecomputeEvery: 2,
		},
		Weights:     weights,
		Coupled:     *coupled,
		EpochRounds: *rounds,
	}, mech)
	if err != nil {
		return err
	}
	hist, err := dyn.Run(*epochs)
	if err != nil {
		return err
	}

	tab := metrics.NewTable(
		fmt.Sprintf("trustsim: %d peers, %.0f%% malicious, %s, context %s",
			*peers, *malicious*100, mech.Name(), *context),
		"epoch", "trust", "satisfaction", "rep-power", "privacy", "disclosure", "honesty", "bad-rate")
	for _, e := range hist {
		tab.AddRow(e.Epoch, e.Trust, e.Satisfaction, e.Reputation, e.Privacy, e.Disclosure, e.Honesty, e.BadRate)
	}
	tab.Render(w)

	tm := dyn.TrustModel()
	fmt.Fprintf(w, "\nfinal global trust: %.4f\n", tm.GlobalTrust())
	fmt.Fprintf(w, "system trusted (median >= 0.5): %v; strictly trusted (p10 >= 0.5): %v\n",
		tm.SystemTrusted(0.5, 0.5), tm.SystemTrusted(0.5, 0.1))
	sum := dyn.Engine().Summarize()
	fmt.Fprintf(w, "reputation rank accuracy (tau): %.4f; feedback share rate: %.4f\n", sum.Tau, sum.ShareRate)
	return nil
}
