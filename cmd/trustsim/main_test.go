package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/trustnet"
)

func TestRunDefaultsSmall(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-peers", "30", "-epochs", "3", "-rounds", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "final global trust") {
		t.Fatalf("missing summary:\n%s", out)
	}
	if !strings.Contains(out, "eigentrust") {
		t.Fatal("mechanism name missing")
	}
}

func TestRunAllMechanisms(t *testing.T) {
	for _, mech := range []string{"eigentrust", "powertrust", "trustme", "none"} {
		var sb strings.Builder
		err := run([]string{"-peers", "20", "-epochs", "2", "-rounds", "3", "-mechanism", mech}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
	}
}

func TestRunAllContexts(t *testing.T) {
	for _, ctx := range []string{"balanced", "privacy", "performance", "marketplace"} {
		var sb strings.Builder
		err := run([]string{"-peers", "20", "-epochs", "2", "-rounds", "3", "-context", ctx}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-mechanism", "nope"},
		{"-context", "nope"},
		{"-malicious", "0.8", "-selfish", "0.5"},
		{"-bogusflag"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestCheckpointResume proves the CLI checkpoint workflow: 3 epochs +
// checkpoint, then resume + 3 more, prints exactly what one uninterrupted
// 6-epoch run prints — the snapshot preserves every stream position.
func TestCheckpointResume(t *testing.T) {
	scenario := []string{"-peers", "30", "-rounds", "4", "-malicious", "0.2", "-gate", "0.1"}
	snap := filepath.Join(t.TempDir(), "run.snap")

	var full strings.Builder
	if err := run(append([]string{"-epochs", "6"}, scenario...), &full); err != nil {
		t.Fatal(err)
	}

	var first strings.Builder
	if err := run(append([]string{"-epochs", "3", "-checkpoint", snap}, scenario...), &first); err != nil {
		t.Fatal(err)
	}
	var resumed strings.Builder
	if err := run(append([]string{"-epochs", "3", "-resume", snap}, scenario...), &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != full.String() {
		t.Fatalf("resumed output differs from uninterrupted run:\n--- full ---\n%s\n--- resumed ---\n%s",
			full.String(), resumed.String())
	}
}

func TestResumeRejectsMismatchedScenario(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "run.snap")
	var sb strings.Builder
	if err := run([]string{"-peers", "30", "-epochs", "2", "-rounds", "3", "-checkpoint", snap}, &sb); err != nil {
		t.Fatal(err)
	}
	var other strings.Builder
	if err := run([]string{"-peers", "40", "-epochs", "2", "-rounds", "3", "-resume", snap}, &other); err == nil {
		t.Fatal("resume into a different population accepted")
	}
	var missing strings.Builder
	if err := run([]string{"-peers", "30", "-epochs", "2", "-resume", filepath.Join(t.TempDir(), "nope")}, &missing); err == nil {
		t.Fatal("resume from missing file accepted")
	}
}

// TestResumeRejectsOldVersionSnapshot pins the -resume failure mode for a
// previous-generation checkpoint: a clear version-mismatch message, not a
// raw gob decode error.
func TestResumeRejectsOldVersionSnapshot(t *testing.T) {
	type v1State struct{ Engine string }
	type v1Snapshot struct {
		Version   int
		Peers     int
		Mechanism string
		Epoch     int
		State     v1State
	}
	snap := filepath.Join(t.TempDir(), "old.snap")
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v1Snapshot{Version: 1, Peers: 30, Mechanism: "eigentrust"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-peers", "30", "-epochs", "2", "-resume", snap}, &sb)
	if err == nil {
		t.Fatal("old-version snapshot accepted")
	}
	if !strings.Contains(err.Error(), "snapshot version mismatch (got 1, want 2)") {
		t.Fatalf("resume error %q does not name the version mismatch", err)
	}
}

func TestRunWithGateAndSelfish(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-peers", "25", "-epochs", "2", "-rounds", "3",
		"-gate", "0.3", "-selfish", "0.2", "-malicious", "0.2", "-coupled=false"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "system trusted") {
		t.Fatal("verdict line missing")
	}
}

// TestScenarioFlag runs every registered scenario by name, twice, and
// demands byte-identical output — the acceptance bar for declarative
// scenarios: each built-in runs deterministically from its spec.
func TestScenarioFlag(t *testing.T) {
	for _, name := range trustnet.ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			var a, b strings.Builder
			if err := run([]string{"-scenario", name}, &a); err != nil {
				t.Fatal(err)
			}
			if err := run([]string{"-scenario", name}, &b); err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatalf("scenario %q is not deterministic", name)
			}
			if !strings.Contains(a.String(), "final global trust") {
				t.Fatalf("scenario %q output missing summary:\n%s", name, a.String())
			}
		})
	}
}

// TestScenarioFlagFromFile: a JSON spec file runs like a registered name,
// and the -shards flag never changes the trajectory.
func TestScenarioFlagFromFile(t *testing.T) {
	sc := trustnet.MustScenario("churnstorm")
	sc.Epochs = 4
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "storm.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var fromFile, sharded strings.Builder
	if err := run([]string{"-scenario", path}, &fromFile); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path, "-shards", "4"}, &sharded); err != nil {
		t.Fatal(err)
	}
	if fromFile.String() != sharded.String() {
		t.Fatal("-shards changed a scenario run's output")
	}
}

// TestScenarioCheckpointResume: -checkpoint/-resume compose with -scenario.
// A 2-epoch spec checkpointed then resumed under a 3-epoch spec prints
// exactly the last three table rows of one uninterrupted 5-epoch run — the
// workflow the README documents for continuing a trustnetd snapshot offline.
func TestScenarioCheckpointResume(t *testing.T) {
	spec := func(epochs int) string {
		sc := trustnet.MustScenario("baseline")
		sc.Peers = 30
		sc.EpochRounds = 4
		sc.Epochs = epochs
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "spec.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	tableRows := func(out string) []string {
		var rows []string
		for _, line := range strings.Split(out, "\n") {
			f := strings.Fields(line)
			if len(f) > 1 {
				if _, err := strconv.Atoi(f[0]); err == nil {
					rows = append(rows, line)
				}
			}
		}
		return rows
	}

	var full strings.Builder
	if err := run([]string{"-scenario", spec(5)}, &full); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "run.snap")
	var first strings.Builder
	if err := run([]string{"-scenario", spec(2), "-checkpoint", snap}, &first); err != nil {
		t.Fatal(err)
	}
	var resumed strings.Builder
	if err := run([]string{"-scenario", spec(3), "-resume", snap}, &resumed); err != nil {
		t.Fatal(err)
	}

	fullRows, resumedRows := tableRows(full.String()), tableRows(resumed.String())
	if len(fullRows) != 5 || len(resumedRows) != 3 {
		t.Fatalf("row counts: full %d want 5, resumed %d want 3", len(fullRows), len(resumedRows))
	}
	for i, row := range resumedRows {
		if row != fullRows[2+i] {
			t.Fatalf("resumed row %d differs from uninterrupted run:\n%s\n%s", i, row, fullRows[2+i])
		}
	}
	if !strings.HasPrefix(strings.TrimSpace(resumedRows[0]), "2") {
		t.Fatalf("resumed run should continue at epoch 2, got row %q", resumedRows[0])
	}
}

// TestScenarioFlagUnknown: an unresolvable reference names the registered
// scenarios instead of running defaults.
func TestScenarioFlagUnknown(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-scenario", "no-such-thing"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "quickstart") {
		t.Fatalf("err = %v, want an error listing registered scenarios", err)
	}
}
