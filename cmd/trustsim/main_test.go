package main

import (
	"strings"
	"testing"
)

func TestRunDefaultsSmall(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-peers", "30", "-epochs", "3", "-rounds", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "final global trust") {
		t.Fatalf("missing summary:\n%s", out)
	}
	if !strings.Contains(out, "eigentrust") {
		t.Fatal("mechanism name missing")
	}
}

func TestRunAllMechanisms(t *testing.T) {
	for _, mech := range []string{"eigentrust", "powertrust", "trustme", "none"} {
		var sb strings.Builder
		err := run([]string{"-peers", "20", "-epochs", "2", "-rounds", "3", "-mechanism", mech}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
	}
}

func TestRunAllContexts(t *testing.T) {
	for _, ctx := range []string{"balanced", "privacy", "performance", "marketplace"} {
		var sb strings.Builder
		err := run([]string{"-peers", "20", "-epochs", "2", "-rounds", "3", "-context", ctx}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-mechanism", "nope"},
		{"-context", "nope"},
		{"-malicious", "0.8", "-selfish", "0.5"},
		{"-bogusflag"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestRunWithGateAndSelfish(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-peers", "25", "-epochs", "2", "-rounds", "3",
		"-gate", "0.3", "-selfish", "0.2", "-malicious", "0.2", "-coupled=false"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "system trusted") {
		t.Fatal("verdict line missing")
	}
}
