// Command trustmaster runs a scenario as the master of a multi-process
// cluster: it listens for trustworker registrations, fans the parallel
// epoch phases (interaction scatter, mechanism SpMV) out to them, and folds
// the results in canonical order — so the run is bit-for-bit identical to a
// single-process `trustsim -scenario` run of the same scenario, at any
// worker count (including zero: with no workers it simply runs locally).
//
// Quickstart (one master, two workers):
//
//	trustmaster -scenario baseline -listen 127.0.0.1:9700 -workers 2 &
//	trustworker -master 127.0.0.1:9700 -name w1 &
//	trustworker -master 127.0.0.1:9700 -name w2 &
//
// SIGINT/SIGTERM stop the run cleanly after the in-flight epoch: the
// history written so far is saved (-history) and every worker is told to
// shut down (exit 0).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/trustnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trustmaster:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trustmaster", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		scenarioRef = fs.String("scenario", "baseline", "registered scenario name or JSON spec file")
		listen      = fs.String("listen", "127.0.0.1:9700", "worker registration address")
		workers     = fs.Int("workers", 0, "wait for this many workers before running (0 starts immediately)")
		wait        = fs.Duration("wait", 60*time.Second, "how long to wait for -workers registrations")
		epochs      = fs.Int("epochs", 0, "override the scenario's epoch budget")
		shards      = fs.Int("shards", 0, "per-process scatter shards (0 = scenario default; never changes results)")
		historyPath = fs.String("history", "", "write the epoch history to this file as JSON")
		phaseTO     = fs.Duration("phase-timeout", 60*time.Second, "per-phase worker deadline before local fallback")
		heartbeat   = fs.Duration("heartbeat", 5*time.Second, "idle liveness-ping period (negative disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := trustnet.LoadScenario(*scenarioRef)
	if err != nil {
		return err
	}
	if *epochs > 0 {
		sc.Epochs = *epochs
	}
	if sc.Epochs <= 0 {
		return fmt.Errorf("scenario %q has no epochs to run (set Epochs or -epochs)", sc.Name)
	}
	if sc.Shards == 0 && *shards > 0 {
		sc.Shards = *shards
	}
	ln, err := cluster.ListenTCP(*listen)
	if err != nil {
		return err
	}
	m, err := cluster.NewMaster(sc, cluster.MasterConfig{
		Listener:       ln,
		PhaseTimeout:   *phaseTO,
		HeartbeatEvery: *heartbeat,
	})
	if err != nil {
		ln.Close()
		return err
	}
	defer m.Shutdown()
	fmt.Fprintf(w, "trustmaster: scenario %q, listening on %s\n", sc.Name, ln.Addr())
	if *workers > 0 {
		if err := m.WaitForWorkers(*workers, *wait); err != nil {
			return err
		}
		fmt.Fprintf(w, "trustmaster: %d workers registered\n", *workers)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	eng := m.Engine()
	s, err := eng.Session(ctx, trustnet.WithMaxEpochs(sc.Epochs), trustnet.WithSchedule(sc.Schedule))
	if err != nil {
		return err
	}
	for _, err := range s.Epochs() {
		if err != nil {
			// A signal mid-run is a clean stop: keep the epochs completed so
			// far, shut the cluster down, exit 0.
			if ctx.Err() != nil || errors.Is(err, context.Canceled) {
				fmt.Fprintf(w, "trustmaster: interrupted, stopping cleanly\n")
				break
			}
			return err
		}
	}
	hist := eng.History()
	if *historyPath != "" {
		if err := writeHistory(hist, *historyPath); err != nil {
			return err
		}
	}
	scatters, spmvs := m.RemotePhases()
	fmt.Fprintf(w, "trustmaster: %d epochs done; %d live workers; remote phases: scatter=%d spmv=%d\n",
		len(hist), m.LiveWorkers(), scatters, spmvs)
	if len(hist) > 0 {
		last := hist[len(hist)-1]
		fmt.Fprintf(w, "trustmaster: final trust %.4f, bad-rate %.4f\n", last.Trust, last.BadRate)
	}
	m.Shutdown()
	return nil
}

// writeHistory serializes the epoch history to a file as JSON — the
// artifact the cluster-smoke CI job diffs byte-for-byte against a trustsim
// run. JSON, not gob: JSON floats use the shortest representation that
// round-trips, so byte equality proves bit equality — while gob assigns
// wire type ids from a process-global registry, making its bytes differ
// between binaries that built other gob types first.
func writeHistory(hist []trustnet.EpochStats, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(hist); err != nil {
		f.Close()
		return fmt.Errorf("history: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	return nil
}
