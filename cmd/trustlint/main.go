// Command trustlint is the repo's determinism & snapshot-completeness
// analyzer suite, run as a vet tool:
//
//	go build -o trustlint ./cmd/trustlint
//	go vet -vettool=$PWD/trustlint ./...
//
// It hosts four analyzers that enforce the equal-seeds ⇒ bit-identical
// invariant at compile time over the deterministic packages (internal/core,
// internal/workload, internal/reputation, internal/linalg, internal/metrics,
// internal/sim, internal/satisfaction, internal/privacy):
//
//	mapiter           order-dependent iteration over maps
//	nondeterm         wall-clock, global math/rand, env access, map formatting
//	snapshotcomplete  snapshot encode/decode paths vs. declared struct fields
//	foldorder         float accumulation inside goroutine bodies
//
// Individual analyzers can be disabled with -<name>=false. Findings are
// suppressed only by the two reasoned waiver comments,
// `//trustlint:ordered <reason>` and `//trustlint:derived <reason>`; see
// the internal/analysis package documentation for the full grammar.
package main

import (
	"repro/internal/analysis/foldorder"
	"repro/internal/analysis/mapiter"
	"repro/internal/analysis/nondeterm"
	"repro/internal/analysis/snapshotcomplete"
	"repro/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(
		mapiter.Analyzer,
		nondeterm.Analyzer,
		snapshotcomplete.Analyzer,
		foldorder.Analyzer,
	)
}
