// Command experiments regenerates every figure and claim-table of the
// reproduced paper (see DESIGN.md §3 for the experiment index E1–E10).
//
// Usage:
//
//	experiments [-run E1,E5,...|all] [-quick] [-seed N]
//
// Every simulation experiment is expressed as a declarative
// trustnet.Scenario expanded by a trustnet.Experiment sweep (axes ×
// seed replications on a bounded worker pool) — there are no hand-rolled
// replication or grid loops; the tables read off aggregated SweepResults.
// (E2/E3 check the closed-form iterated map and E9 drives the privacy
// service directly — no run matrices.)
//
// Each experiment prints fixed-width tables; EXPERIMENTS.md records the
// paper-vs-measured comparison for the committed seeds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

type experiment struct {
	id   string
	desc string
	run  func(w io.Writer, p params) error
}

// params carries the shared experiment knobs.
type params struct {
	seed  uint64
	quick bool
	// shards is the parallel epoch-shard count every engine runs with.
	// Shards are a scheduling decomposition only, so experiment output is
	// identical for every value.
	shards int
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(w)
	runList := fs.String("run", "all", "comma-separated experiment ids (E1..E10) or 'all'")
	quick := fs.Bool("quick", false, "smaller populations and fewer rounds")
	seed := fs.Uint64("seed", 1, "root random seed")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0), "parallel epoch shards (identical results for any count)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("shards must be >= 1, got %d", *shards)
	}
	p := params{seed: *seed, quick: *quick, shards: *shards}

	all := []experiment{
		{"E1", "Fig.1 coupled feedback: coupling on vs off", runE1},
		{"E2", "§3 claim 1: trust<->satisfaction iterated map", runE2},
		{"E3", "§3 claims 2+3: reputation power -> trust, satisfaction, honesty", runE3},
		{"E4", "§3 claim 4: efficient mechanism, majority untrustworthy", runE4},
		{"E5", "§3 claim 5 + Fig.2 right: disclosure antinomy", runE5},
		{"E6", "Fig.2 left: Area A classification", runE6},
		{"E7", "§2.2 mechanism space: eigentrust/trustme/powertrust/none", runE7},
		{"E8", "§2.2 adversary taxonomy robustness", runE8},
		{"E9", "§2.3 OECD / PriServ conformance", runE9},
		{"E10", "§4 generic metric and optimizer per context", runE10},
		{"E11", "§2.2 cited anonymous-reputation trade-off (extension)", runE11},
	}

	want := map[string]bool{}
	if *runList == "all" {
		for _, e := range all {
			want[e.id] = true
		}
	} else {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.id] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("unknown experiment ids: %s", strings.Join(unknown, ", "))
	}

	for _, e := range all {
		if !want[e.id] {
			continue
		}
		start := time.Now()
		fmt.Fprintf(w, "\n########## %s — %s ##########\n", e.id, e.desc)
		if err := e.run(w, p); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprintf(w, "[%s done in %v]\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
