package main

import (
	"strings"
	"testing"
)

func TestRunSelectsExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "E2,E3", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "E2") || !strings.Contains(out, "E3") {
		t.Fatalf("selected experiments missing:\n%s", out)
	}
	if strings.Contains(out, "E5:") {
		t.Fatal("unselected experiment ran")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	var sb strings.Builder
	if err := run([]string{"-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11"} {
		if !strings.Contains(out, "########## "+id+" ") {
			t.Fatalf("experiment %s missing from full quick run", id)
		}
	}
	// Every experiment's key verdicts must appear.
	for _, verdict := range []string{
		"single attractor",             // E2
		"monotone in reputation power", // E3
		"contribution continues",       // E4
		"iso-satisfaction pair",        // E5
		"Area A:",                      // E6
		"LRW convergence",              // E7
		"whitewashing launders",        // E8
		"OECD",                         // E9
		"distinct optimal settings",    // E10
		"reputation/privacy trade-off", // E11
	} {
		if !strings.Contains(out, verdict) {
			t.Fatalf("verdict %q missing:\n", verdict)
		}
	}
}

func TestRunRejectsUnknownIDs(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-run", "E2,E99"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "E99") {
		t.Fatalf("err = %v, want unknown-id error naming E99", err)
	}
}

func TestRunCaseInsensitiveIDs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "e2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "iterated map") {
		t.Fatal("lowercase id did not run E2")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestE2OutputShape(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "E2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "single attractor") {
		t.Fatalf("E2 conclusion missing:\n%s", out)
	}
	// Eleven data rows (t0 = 0.0 .. 1.0).
	if strings.Count(out, "yes") < 11 {
		t.Fatalf("E2 monotonicity rows missing:\n%s", out)
	}
}

func TestE9OutputShape(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "E9", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, principle := range []string{
		"collection-limitation", "purpose-specification", "use-limitation",
		"data-quality", "security-safeguards", "openness",
		"individual-participation", "accountability",
	} {
		if !strings.Contains(out, principle) {
			t.Fatalf("principle %s missing from E9 output", principle)
		}
	}
}

func TestE11OutputShape(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "E11", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "linkability") {
		t.Fatal("E11 output missing linkability")
	}
}
