package main

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/trustnet"
)

// runE9 exercises the PriServ-style privacy service against the full OECD
// principle list of §2.3: a mixed workload of conforming and violating
// requests, then the conformance matrix and the denial breakdown.
func runE9(w io.Writer, p params) error {
	nNodes := 64
	nOwners := 100
	nRequests := 1000
	if p.quick {
		nOwners, nRequests = 40, 400
	}
	s := trustnet.NewSim()
	svc, ledger, err := trustnet.NewPrivacyService(nNodes, 3, s)
	if err != nil {
		return err
	}
	rng := trustnet.NewRNG(p.seed)

	// Publish one item per owner with the sensitivity-derived default
	// policy, friends = even/odd neighborhood.
	sens := []trustnet.Sensitivity{
		trustnet.Public, trustnet.LowSensitivity,
		trustnet.MediumSensitivity, trustnet.HighSensitivity,
	}
	for i := 0; i < nOwners; i++ {
		sc := sens[i%len(sens)]
		key := fmt.Sprintf("item/%d", i)
		if err := svc.Publish(i, key, []byte(fmt.Sprintf("data-%d", i)), sc, trustnet.DefaultPolicy(sc)); err != nil {
			return err
		}
	}

	ops := []trustnet.Operation{trustnet.Read, trustnet.Write, trustnet.Share, trustnet.Aggregate}
	purposes := []trustnet.Purpose{
		trustnet.SocialUse, trustnet.ReputationUse, trustnet.ResearchUse,
		trustnet.CommercialUse, trustnet.MaintenanceUse,
	}
	granted := 0
	for k := 0; k < nRequests; k++ {
		owner := rng.Intn(nOwners)
		requester := rng.Intn(nOwners)
		key := fmt.Sprintf("item/%d", owner)
		op := ops[rng.Intn(len(ops))]
		purpose := purposes[rng.Intn(len(purposes))]
		trust := rng.Float64()
		isFriend := (owner+requester)%2 == 0
		if _, _, err := svc.Request(requester, key, op, purpose, trust, isFriend); err == nil {
			granted++
		}
		s.After(1, func() {}) // advance virtual time between requests
		if err := s.Run(0); err != nil {
			return err
		}
	}
	// Let all retention expiries fire.
	if err := s.Run(s.Now() + 2000); err != nil {
		return err
	}

	results := trustnet.AuditPrivacy(svc, ledger, s.Now())
	tab := trustnet.NewTable(
		fmt.Sprintf("E9: OECD conformance after %d requests (%d granted)", nRequests, granted),
		"principle", "pass", "evidence")
	for _, r := range results {
		tab.AddRow(r.Principle.String(), r.Pass, r.Detail)
	}
	tab.Render(w)

	dt := trustnet.NewTable("E9b: denial breakdown by policy clause", "reason", "count")
	type kv struct {
		reason trustnet.DenyReason
		count  int64
	}
	var denials []kv
	for reason, count := range svc.Denials {
		denials = append(denials, kv{reason, count})
	}
	sort.Slice(denials, func(i, j int) bool { return denials[i].count > denials[j].count })
	for _, d := range denials {
		dt.AddRow(d.reason.String(), d.count)
	}
	dt.Render(w)
	fmt.Fprintf(w, "grant rate %.1f%%; every OECD principle enforced mechanically\n",
		100*float64(granted)/float64(nRequests))
	return nil
}

// runE10 runs §4's optimizer: per applicative context, the max-trust
// setting under that context's weights and constraints — "the same global
// satisfaction can be reached by different settings, which depend on the
// applicative context requirements". Each Optimize call is sweep-backed
// (grid sweep + hill-climb batches).
func runE10(w io.Writer, p params) error {
	n := p.peers(120)
	rounds := 30
	grid := 5
	if p.quick {
		rounds, grid = 20, 4
	}
	base := trustnet.ExploreConfig{
		Scenario: scenario(p, 0.3, n),
		Rounds:   rounds,
		GridSize: grid,
	}
	type row struct {
		ctx  trustnet.AppContext
		cons trustnet.Constraints
	}
	rows := []row{
		{trustnet.Balanced, trustnet.Constraints{}},
		{trustnet.PrivacyCritical, trustnet.Constraints{MinPrivacy: 0.85}},
		{trustnet.PerformanceCritical, trustnet.Constraints{MinSatisfaction: 0.6}},
		{trustnet.MarketplaceContext, trustnet.Constraints{MinReputation: 0.6}},
	}
	tab := trustnet.NewTable("E10: optimal setting per applicative context",
		"context", "disclosure*", "gate*", "S", "R", "P", "trust*")
	var points []trustnet.Point
	for _, r := range rows {
		cfg := base
		cfg.Weights = trustnet.ContextWeights(r.ctx)
		pt, err := trustnet.Optimize(context.Background(), cfg, r.cons)
		if err != nil {
			return fmt.Errorf("context %v: %w", r.ctx, err)
		}
		points = append(points, pt)
		tab.AddRow(r.ctx.String(), pt.Setting.Disclosure, pt.Setting.TrustGate,
			pt.Global.Satisfaction, pt.Global.Reputation, pt.Global.Privacy, pt.Trust)
	}
	tab.Render(w)
	distinct := map[trustnet.Setting]bool{}
	for _, pt := range points {
		distinct[pt.Setting] = true
	}
	fmt.Fprintf(w, "%d distinct optimal settings across 4 contexts — the right setting depends on the applicative context\n",
		len(distinct))
	return nil
}
