package main

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/sim"
	"repro/internal/social"
	"repro/internal/workload"
)

// runE9 exercises the PriServ-style privacy service against the full OECD
// principle list of §2.3: a mixed workload of conforming and violating
// requests, then the conformance matrix and the denial breakdown.
func runE9(w io.Writer, p params) error {
	nNodes := 64
	nOwners := 100
	nRequests := 1000
	if p.quick {
		nOwners, nRequests = 40, 400
	}
	ring := dht.NewRing(3)
	for i := 0; i < nNodes; i++ {
		if err := ring.Join(i); err != nil {
			return err
		}
	}
	ring.Stabilize()
	ledger := privacy.NewLedger()
	s := sim.New()
	svc, err := privacy.NewService(ring, ledger, s)
	if err != nil {
		return err
	}
	rng := sim.NewRNG(p.seed)

	// Publish one item per owner with the sensitivity-derived default
	// policy, friends = even/odd neighborhood.
	sens := []social.Sensitivity{social.Public, social.Low, social.Medium, social.High}
	for i := 0; i < nOwners; i++ {
		sc := sens[i%len(sens)]
		key := fmt.Sprintf("item/%d", i)
		if err := svc.Publish(i, key, []byte(fmt.Sprintf("data-%d", i)), sc, privacy.DefaultPolicy(sc)); err != nil {
			return err
		}
	}

	ops := []privacy.Operation{privacy.Read, privacy.Write, privacy.Share, privacy.Aggregate}
	purposes := []privacy.Purpose{
		privacy.SocialUse, privacy.ReputationUse, privacy.ResearchUse,
		privacy.CommercialUse, privacy.MaintenanceUse,
	}
	granted := 0
	for k := 0; k < nRequests; k++ {
		owner := rng.Intn(nOwners)
		requester := rng.Intn(nOwners)
		key := fmt.Sprintf("item/%d", owner)
		op := ops[rng.Intn(len(ops))]
		purpose := purposes[rng.Intn(len(purposes))]
		trust := rng.Float64()
		isFriend := (owner+requester)%2 == 0
		if _, _, err := svc.Request(requester, key, op, purpose, trust, isFriend); err == nil {
			granted++
		}
		s.After(1, func() {}) // advance virtual time between requests
		if err := s.Run(0); err != nil {
			return err
		}
	}
	// Let all retention expiries fire.
	if err := s.Run(s.Now() + 2000); err != nil {
		return err
	}

	results := privacy.Audit(svc, ledger, s.Now())
	tab := metrics.NewTable(
		fmt.Sprintf("E9: OECD conformance after %d requests (%d granted)", nRequests, granted),
		"principle", "pass", "evidence")
	for _, r := range results {
		tab.AddRow(r.Principle.String(), r.Pass, r.Detail)
	}
	tab.Render(w)

	dt := metrics.NewTable("E9b: denial breakdown by policy clause", "reason", "count")
	type kv struct {
		reason privacy.DenyReason
		count  int64
	}
	var denials []kv
	for reason, count := range svc.Denials {
		denials = append(denials, kv{reason, count})
	}
	sort.Slice(denials, func(i, j int) bool { return denials[i].count > denials[j].count })
	for _, d := range denials {
		dt.AddRow(d.reason.String(), d.count)
	}
	dt.Render(w)
	fmt.Fprintf(w, "grant rate %.1f%%; every OECD principle enforced mechanically\n",
		100*float64(granted)/float64(nRequests))
	return nil
}

// runE10 runs §4's optimizer: per applicative context, the max-trust
// setting under that context's weights and constraints — "the same global
// satisfaction can be reached by different settings, which depend on the
// applicative context requirements".
func runE10(w io.Writer, p params) error {
	n := p.peers(120)
	rounds := 30
	grid := 5
	if p.quick {
		rounds, grid = 20, 4
	}
	base := core.ExploreConfig{
		Base: workload.Config{
			Seed:           p.seed,
			NumPeers:       n,
			Mix:            baseMix(0.3),
			RecomputeEvery: 2,
		},
		Mechanism: eigenFactory(),
		Rounds:    rounds,
		GridSize:  grid,
	}
	type row struct {
		ctx  core.Context
		cons core.Constraints
	}
	rows := []row{
		{core.Balanced, core.Constraints{}},
		{core.PrivacyCritical, core.Constraints{MinPrivacy: 0.85}},
		{core.PerformanceCritical, core.Constraints{MinSatisfaction: 0.6}},
		{core.MarketplaceContext, core.Constraints{MinReputation: 0.6}},
	}
	tab := metrics.NewTable("E10: optimal setting per applicative context",
		"context", "disclosure*", "gate*", "S", "R", "P", "trust*")
	var points []core.Point
	for _, r := range rows {
		cfg := base
		cfg.Weights = core.ContextWeights(r.ctx)
		pt, err := core.Optimize(cfg, r.cons)
		if err != nil {
			return fmt.Errorf("context %v: %w", r.ctx, err)
		}
		points = append(points, pt)
		tab.AddRow(r.ctx.String(), pt.Setting.Disclosure, pt.Setting.TrustGate,
			pt.Global.Satisfaction, pt.Global.Reputation, pt.Global.Privacy, pt.Trust)
	}
	tab.Render(w)
	distinct := map[core.Setting]bool{}
	for _, pt := range points {
		distinct[pt.Setting] = true
	}
	fmt.Fprintf(w, "%d distinct optimal settings across 4 contexts — the right setting depends on the applicative context\n",
		len(distinct))
	return nil
}
