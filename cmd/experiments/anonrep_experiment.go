package main

import (
	"fmt"
	"io"

	"repro/trustnet"
)

// runE11 measures the reputation/anonymity trade-off of the anonymous
// reputation schemes the paper cites in §2.2 ([2], [4]): rotating
// pseudonyms with coarse, noisy reputation transfer. Sweeping the transfer
// noise shows the paper's "interesting but challenging trade-off between
// reputation and privacy purposes": linkability (privacy loss) and rank
// accuracy (reputation power) fall together.
func runE11(w io.Writer, p params) error {
	n := p.peers(150)
	chunks := 6
	roundsPerChunk := 8
	if p.quick {
		chunks = 4
		roundsPerChunk = 5
	}
	type setting struct {
		gran  float64
		noise float64
	}
	settings := []setting{
		{0.001, 0.00},
		{0.05, 0.02},
		{0.10, 0.05},
		{0.25, 0.10},
		{0.50, 0.20},
	}
	tab := trustnet.NewTable(
		fmt.Sprintf("E11: pseudonymous reputation — anonymity vs accuracy (%d peers, 30%% malicious)", n),
		"granularity", "noise", "linkability", "tau", "bad-rate")
	var link, tau trustnet.Series
	link.Name, tau.Name = "linkability", "tau"
	for _, s := range settings {
		mech, err := trustnet.NewAnonRep(trustnet.AnonRepConfig{
			N: n, Granularity: s.gran, Noise: s.noise, Seed: p.seed,
		})
		if err != nil {
			return err
		}
		eng, err := trustnet.New(
			trustnet.WithPeers(n),
			trustnet.WithRNGSeed(p.seed),
			trustnet.WithMix(baseMix(0.3)),
			trustnet.WithReputationMechanism(trustnet.UseMechanism(mech)),
			trustnet.WithRecomputeEvery(2),
			p.shardOpt(),
		)
		if err != nil {
			return err
		}
		var advSum float64
		for c := 0; c < chunks; c++ {
			eng.RunRounds(roundsPerChunk)
			mech.NextEpoch()
			advSum += mech.LinkabilityAdvantage()
		}
		sum := eng.Summary()
		adv := advSum / float64(chunks)
		tab.AddRow(s.gran, s.noise, adv, sum.Tau, sum.RecentBadRate)
		link.Add(s.noise, adv)
		tau.Add(s.noise, sum.Tau)
	}
	tab.Render(w)
	fmt.Fprintf(w, "linkability falls with protection: %v; accuracy falls with it: %v — the cited reputation/privacy trade-off\n",
		link.MonotoneDown(0.1), tau.MonotoneDown(0.15))
	fmt.Fprintf(w, "(random-guess linkability baseline: %.4f)\n", 1/float64(n))
	return nil
}
