package main

import (
	"context"
	"fmt"
	"io"

	"repro/trustnet"
)

// runE11 measures the reputation/anonymity trade-off of the anonymous
// reputation schemes the paper cites in §2.2 ([2], [4]): rotating
// pseudonyms with coarse, noisy reputation transfer. The five protection
// settings are one (granularity, noise) tuple axis of a sweep; a custom
// driver advances the pseudonym epoch between round chunks and reports the
// linkability advantage. Sweeping the transfer noise shows the paper's
// "interesting but challenging trade-off between reputation and privacy
// purposes": linkability (privacy loss) and rank accuracy (reputation
// power) fall together.
func runE11(w io.Writer, p params) error {
	n := p.peers(150)
	chunks := 6
	roundsPerChunk := 8
	if p.quick {
		chunks = 4
		roundsPerChunk = 5
	}
	settings := [][]float64{
		{0.001, 0.00},
		{0.05, 0.02},
		{0.10, 0.05},
		{0.25, 0.10},
		{0.50, 0.20},
	}
	base := scenario(p, 0.3, n)
	base.Mechanism = trustnet.MechanismSpec{Kind: "anonrep"}
	res, err := trustnet.NewExperiment(base).
		VaryTuples([]string{"granularity", "noise"}, settings...).
		Drive(func(_ context.Context, eng *trustnet.Engine, _ trustnet.Scenario) (map[string]float64, error) {
			mech, ok := eng.Mechanism().(*trustnet.AnonRepMechanism)
			if !ok {
				return nil, fmt.Errorf("E11 needs the anonrep mechanism, got %q", eng.Mechanism().Name())
			}
			var advSum float64
			for c := 0; c < chunks; c++ {
				eng.RunRounds(roundsPerChunk)
				mech.NextEpoch()
				advSum += mech.LinkabilityAdvantage()
			}
			return map[string]float64{"linkability": advSum / float64(chunks)}, nil
		}).
		Run(context.Background())
	if err != nil {
		return err
	}
	tab := trustnet.NewTable(
		fmt.Sprintf("E11: pseudonymous reputation — anonymity vs accuracy (%d peers, 30%% malicious)", n),
		"granularity", "noise", "linkability", "tau", "bad-rate")
	var link, tau trustnet.Series
	link.Name, tau.Name = "linkability", "tau"
	for _, cell := range res.Cells {
		gran, noise := cell.Coord.Get("granularity"), cell.Coord.Get("noise")
		adv := cell.Extra["linkability"].Mean
		sum := cell.Runs[0].Summary
		tab.AddRow(gran, noise, adv, sum.Tau, sum.RecentBadRate)
		link.Add(noise, adv)
		tau.Add(noise, sum.Tau)
	}
	tab.Render(w)
	fmt.Fprintf(w, "linkability falls with protection: %v; accuracy falls with it: %v — the cited reputation/privacy trade-off\n",
		link.MonotoneDown(0.1), tau.MonotoneDown(0.15))
	fmt.Fprintf(w, "(random-guess linkability baseline: %.4f)\n", 1/float64(n))
	return nil
}
