package main

import (
	"context"
	"fmt"
	"io"
	"math"

	"repro/trustnet"
)

func (p params) peers(full int) int {
	if p.quick {
		return full / 2
	}
	return full
}

func (p params) epochs(full int) int {
	if p.quick {
		e := full / 2
		if e < 3 {
			e = 3
		}
		return e
	}
	return full
}

// scenario is the shared base Scenario of the experiments: the standard
// population on the standard mechanism at the standard recompute cadence.
// Every experiment expands it through a Sweep instead of hand-rolling run
// loops.
func scenario(p params, malicious float64, n int) trustnet.Scenario {
	shards := p.shards
	if shards < 1 {
		shards = 1
	}
	return trustnet.Scenario{
		Peers: n,
		Seed:  p.seed,
		// The pre-trusted set {0,1,2} is known-good (network founders),
		// matching EigenTrust's deployment assumption.
		Mix:            trustnet.MixOf(map[string]float64{"malicious": malicious}, 0, 1, 2),
		Mechanism:      trustnet.MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}},
		RecomputeEvery: 2,
		Shards:         shards,
	}
}

// coupledScenario is the base for the §3 coupled-dynamics experiments.
func coupledScenario(p params, malicious float64, n int) trustnet.Scenario {
	sc := scenario(p, malicious, n)
	sc.Privacy = &trustnet.PrivacyPolicy{Disclosure: 0.8}
	sc.Coupled = true
	sc.EpochRounds = 8
	return sc
}

// runE1 reproduces Figure 1: with the §3 couplings enabled, trust,
// satisfaction and the coupling variables co-evolve toward a fixed point;
// with couplings disabled they stay pinned at their bases. The on/off
// contrast is a one-axis sweep.
func runE1(w io.Writer, p params) error {
	n := p.peers(200)
	epochs := p.epochs(12)
	res, err := trustnet.NewExperiment(coupledScenario(p, 0.3, n)).
		Vary("coupling", 1, 0).
		Epochs(epochs).
		Run(context.Background())
	if err != nil {
		return err
	}
	hc := res.At(0).Runs[0].History
	hd := res.At(1).Runs[0].History
	tab := trustnet.NewTable("E1: coupled vs decoupled dynamics (200 peers, 30% malicious)",
		"epoch", "trust(c)", "sat(c)", "rep(c)", "priv(c)", "disclose(c)", "honesty(c)",
		"trust(d)", "disclose(d)")
	for i := range hc {
		tab.AddRow(i, hc[i].Trust, hc[i].Satisfaction, hc[i].Reputation, hc[i].Privacy,
			hc[i].Disclosure, hc[i].Honesty, hd[i].Trust, hd[i].Disclosure)
	}
	tab.Render(w)
	lastC, lastD := hc[len(hc)-1], hd[len(hd)-1]
	fmt.Fprintf(w, "coupling moved disclosure %.3f -> %.3f and honesty -> %.3f; decoupled stayed at %.3f\n",
		hc[0].Disclosure, lastC.Disclosure, lastC.Honesty, lastD.Disclosure)
	return nil
}

// runE2 verifies §3's first claim with the noise-free iterated map: mutual
// reinforcement converges monotonically to a single fixed point from any
// initial trust level. (Closed-form claim check — no engine runs, so no
// sweep.)
func runE2(w io.Writer, p params) error {
	cfg := trustnet.MapConfig{Reputation: 0.8, Privacy: 0.8}
	tab := trustnet.NewTable("E2: trust<->satisfaction iterated map (R=0.8, P=0.8)",
		"t0", "t@5", "t@15", "t@40", "monotone")
	var fixed []float64
	for i := 0; i <= 10; i++ {
		t0 := float64(i) / 10
		traj, err := trustnet.RunIteratedMap(t0, 40, cfg)
		if err != nil {
			return err
		}
		mono := "yes"
		increasing := traj[len(traj)-1] >= traj[0]
		for k := 2; k < len(traj); k++ {
			if increasing && traj[k] < traj[k-1]-1e-9 || !increasing && traj[k] > traj[k-1]+1e-9 {
				mono = "no"
			}
		}
		fixed = append(fixed, traj[len(traj)-1])
		tab.AddRow(t0, traj[5], traj[15], traj[40], mono)
	}
	tab.Render(w)
	spread := trustnet.Quantile(fixed, 1) - trustnet.Quantile(fixed, 0)
	fmt.Fprintf(w, "fixed-point spread over 11 starting points: %.6f (single attractor)\n", spread)
	return nil
}

// runE3 sweeps the reputation mechanism's power and reads off the §3 claims
// 2+3: more power ⇒ more trust ⇒ more satisfaction and more honest
// contribution. (Closed-form claim check on the iterated map.)
func runE3(w io.Writer, p params) error {
	tab := trustnet.NewTable("E3: forced reputation power -> fixed-point trust, satisfaction, honesty",
		"power R", "trust*", "satisfaction*", "honesty*")
	h0 := 0.3
	var trusts []float64
	for i := 0; i <= 10; i++ {
		r := float64(i) / 10
		traj, err := trustnet.RunIteratedMap(0.5, 80, trustnet.MapConfig{Reputation: r, Privacy: 0.8})
		if err != nil {
			return err
		}
		t := traj[len(traj)-1]
		s := 0.1 + 0.8*t
		if s > 1 {
			s = 1
		}
		honesty := h0 + (1-h0)*t
		trusts = append(trusts, t)
		tab.AddRow(r, t, s, honesty)
	}
	tab.Render(w)
	mono := true
	for i := 1; i < len(trusts); i++ {
		if trusts[i] < trusts[i-1]-1e-9 {
			mono = false
		}
	}
	fmt.Fprintf(w, "trust monotone in reputation power: %v\n", mono)
	return nil
}

// runE4 reproduces §3's fourth claim: with 70% of the population
// untrustworthy, an efficient mechanism yields LOW system trust while
// contribution (disclosure) continues. The two populations are one
// malicious-fraction axis.
func runE4(w io.Writer, p params) error {
	n := p.peers(200)
	epochs := p.epochs(12)
	labels := map[float64]string{
		0.1: "10% malicious (healthy)",
		0.7: "70% malicious (majority untrustworthy)",
	}
	res, err := trustnet.NewExperiment(coupledScenario(p, 0.3, n)).
		Vary("malicious", 0.1, 0.7).
		Epochs(epochs).
		Run(context.Background())
	if err != nil {
		return err
	}
	tab := trustnet.NewTable("E4: system trust under honest vs untrustworthy majority",
		"population", "trust", "satisfaction", "rep facet", "community", "disclosure", "bad-rate")
	var healthyTrust, hostileTrust, hostileDisc float64
	for _, cell := range res.Cells {
		malicious := cell.Coord.Get("malicious")
		hist := cell.Runs[0].History
		last := hist[len(hist)-1]
		tab.AddRow(labels[malicious], last.Trust, last.Satisfaction, last.Reputation, last.Community, last.Disclosure, last.BadRate)
		if malicious > 0.5 {
			hostileTrust, hostileDisc = last.Trust, last.Disclosure
		} else {
			healthyTrust = last.Trust
		}
	}
	tab.Render(w)
	fmt.Fprintf(w, "hostile-majority trust %.3f < healthy trust %.3f: %v; contribution continues (disclosure %.3f > 0)\n",
		hostileTrust, healthyTrust, hostileTrust < healthyTrust, hostileDisc)
	return nil
}

// runE5 reproduces Figure 2 (right): sweeping the quantity of shared
// information δ, privacy satisfaction falls while reputation power rises
// (the antinomic impact), and distinct settings reach the same global
// satisfaction. The disclosure axis × seed replications are one sweep; the
// curves read off each cell's cross-seed means.
func runE5(w io.Writer, p params) error {
	n := p.peers(200)
	rounds := 40
	if p.quick {
		rounds = 25
	}
	seeds := []uint64{p.seed, p.seed + 101, p.seed + 202}
	if p.quick {
		seeds = seeds[:2]
	}
	base := scenario(p, 0.3, n)
	base.EpochRounds = rounds
	base.Epochs = 1
	disclosures := make([]float64, 0, 11)
	for i := 0; i <= 10; i++ {
		disclosures = append(disclosures, float64(i)/10)
	}
	res, err := trustnet.NewExperiment(base).
		Vary("disclosure", disclosures...).
		SeedList(seeds...).
		Run(context.Background())
	if err != nil {
		return err
	}
	var priv, rep, sat, trust trustnet.Series
	priv.Name, rep.Name, sat.Name, trust.Name = "privacy", "rep-power", "global-sat", "trust"
	var sats []float64
	for _, cell := range res.Cells {
		d := cell.Coord.Get("disclosure")
		priv.Add(d, cell.Privacy.Mean)
		rep.Add(d, cell.Reputation.Mean)
		sat.Add(d, cell.Satisfaction.Mean)
		trust.Add(d, cell.Trust.Mean)
		sats = append(sats, cell.Satisfaction.Mean)
	}
	trustnet.RenderSeries(w, "E5: disclosure sweep (Fig.2 right)", "disclosure", &priv, &rep, &sat, &trust)
	fmt.Fprintf(w, "privacy monotone down: %v; reputation power monotone up: %v\n",
		priv.MonotoneDown(0.02), rep.MonotoneUp(0.08))
	// Iso-satisfaction: find two settings with (near-)equal global
	// satisfaction — "the same global satisfaction can be reached by using
	// different settings".
	bestI, bestJ, bestGap := -1, -1, math.Inf(1)
	for i := 0; i < len(sats); i++ {
		for j := i + 2; j < len(sats); j++ {
			if gap := math.Abs(sats[i] - sats[j]); gap < bestGap {
				bestI, bestJ, bestGap = i, j, gap
			}
		}
	}
	fmt.Fprintf(w, "iso-satisfaction pair: disclosure %.1f and %.1f differ in S_glob by only %.4f\n",
		float64(bestI)/10, float64(bestJ)/10, bestGap)
	return nil
}
