package main

import (
	"context"
	"fmt"
	"io"

	"repro/trustnet"
)

// eigenSpec is the standard EigenTrust spec with the pre-trusted founders.
func eigenSpec() trustnet.MechanismSpec {
	return trustnet.MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}}
}

// runE6 reproduces Figure 2 (left): the grid over the two settable axes is
// classified into the intersection region "Area A" where all three facet
// satisfactions hold at once; the best tradeoff lives inside it. The grid
// is a sweep under the hood (Explore).
func runE6(w io.Writer, p params) error {
	n := p.peers(120)
	grid := 5
	rounds := 30
	if p.quick {
		grid, rounds = 4, 20
	}
	cfg := trustnet.ExploreConfig{
		Scenario:   scenario(p, 0.3, n),
		Rounds:     rounds,
		GridSize:   grid,
		Thresholds: trustnet.Facets{Satisfaction: 0.6, Reputation: 0.6, Privacy: 0.8},
	}
	res, err := trustnet.Explore(context.Background(), cfg)
	if err != nil {
		return err
	}
	tab := trustnet.NewTable("E6: (disclosure x trust-gate) grid — Area A membership",
		"disclosure", "gate", "S", "R", "P", "trust", "in Area A")
	thr := cfg.Thresholds
	for _, pt := range res.Points {
		in := pt.Global.Satisfaction >= thr.Satisfaction &&
			pt.Global.Reputation >= thr.Reputation &&
			pt.Global.Privacy >= thr.Privacy
		tab.AddRow(pt.Setting.Disclosure, pt.Setting.TrustGate,
			pt.Global.Satisfaction, pt.Global.Reputation, pt.Global.Privacy, pt.Trust, in)
	}
	tab.Render(w)
	fmt.Fprintf(w, "Area A: %d/%d settings (%.0f%%); best overall trust %.3f at (δ=%.2f, σ=%.2f); best inside A %.3f at (δ=%.2f, σ=%.2f)\n",
		len(res.AreaA), len(res.Points), res.AreaFraction*100,
		res.Best.Trust, res.Best.Setting.Disclosure, res.Best.Setting.TrustGate,
		res.BestInAreaA.Trust, res.BestInAreaA.Setting.Disclosure, res.BestInAreaA.Setting.TrustGate)
	return nil
}

// runE7 compares the paper's cited mechanism space — EigenTrust, TrustMe,
// PowerTrust — plus the no-reputation baseline across malicious fractions:
// one (malicious × mechanism) sweep. The bad-service table, the rank
// accuracy / cost table at 40% malicious, and the PowerTrust look-ahead
// ablation all read off sweep results.
func runE7(w io.Writer, p params) error {
	n := p.peers(200)
	rounds := 60
	if p.quick {
		rounds = 30
	}
	fractions := []float64{0, 0.2, 0.4, 0.6, 0.8}
	mechs := []trustnet.MechanismSpec{
		{Kind: "none"},
		eigenSpec(),
		{Kind: "powertrust"},
		{Kind: "trustme"},
	}
	base := scenario(p, 0.3, n)
	base.EpochRounds = rounds
	base.Epochs = 1
	res, err := trustnet.NewExperiment(base).
		Vary("malicious", fractions...).
		VaryMechanism(mechs...).
		Observe(func(eng *trustnet.Engine) map[string]float64 {
			out := map[string]float64{}
			// Read the message counter before the convergence probe: the
			// probe submits a report of its own, which must not count
			// toward the run's messaging overhead.
			if tm, ok := eng.Mechanism().(*trustnet.TrustMeMechanism); ok {
				out["messages"] = float64(tm.Messages)
			}
			out["converge"] = float64(convergenceRounds(eng.Mechanism(), eng.Peers()))
			return out
		}).
		Run(context.Background())
	if err != nil {
		return err
	}
	tab := trustnet.NewTable(
		fmt.Sprintf("E7: bad-service rate by mechanism and malicious fraction (%d peers, %d rounds)", n, rounds),
		"malicious", "none", "eigentrust", "powertrust", "trustme")
	taus := trustnet.NewTable("E7b: rank accuracy (tau) and cost at 40% malicious",
		"mechanism", "tau", "converge-rounds", "extra-messages")
	for fi, frac := range fractions {
		row := []any{frac}
		for mi := range mechs {
			cell := res.At(fi, mi)
			run := cell.Runs[0]
			row = append(row, run.Summary.RecentBadRate)
			if frac == 0.4 {
				var msgs int64
				if v, ok := run.Extra["messages"]; ok {
					msgs = int64(v)
				}
				taus.AddRow(cell.Coord[1].Label, run.Summary.Tau, int(run.Extra["converge"]), msgs)
			}
		}
		tab.AddRow(row...)
	}
	tab.Render(w)
	taus.Render(w)

	// Convergence ablation: PowerTrust's look-ahead random walk vs the
	// plain walk on the same feedback — a two-point mechanism axis whose
	// driver counts the from-dirty recompute.
	abl := scenario(p, 0.3, 50)
	abl.RecomputeEvery = 1000 // never recompute during the run: Compute() below starts dirty
	ablRes, err := trustnet.NewExperiment(abl).
		VaryMechanism(
			trustnet.MechanismSpec{Kind: "powertrust", Epsilon: 1e-10},
			trustnet.MechanismSpec{Kind: "powertrust-plain", Epsilon: 1e-10},
		).
		Drive(func(_ context.Context, eng *trustnet.Engine, _ trustnet.Scenario) (map[string]float64, error) {
			eng.RunRounds(20)
			out := map[string]float64{"converge": float64(eng.Mechanism().Compute())}
			// Observe the elected elite through the read-only views —
			// no per-observation copies in the driver loop.
			if pt, ok := eng.Mechanism().(*trustnet.PowerTrustMechanism); ok {
				nodes, scores := pt.PowerNodesView(), pt.ScoresView()
				sum := 0.0
				for _, id := range nodes {
					sum += scores[id]
				}
				if len(nodes) > 0 {
					out["power_nodes"] = float64(len(nodes))
					out["power_elite"] = sum / float64(len(nodes))
				}
			}
			return out, nil
		}).
		Run(context.Background())
	if err != nil {
		return err
	}
	la := ablRes.At(0).Runs[0].Extra
	fmt.Fprintf(w, "PowerTrust LRW convergence: look-ahead %d rounds vs plain %d rounds (%d power nodes, mean elite score %.2f)\n",
		int(la["converge"]), int(ablRes.At(1).Runs[0].Extra["converge"]),
		int(la["power_nodes"]), la["power_elite"])
	return nil
}

// convergenceRounds measures a full from-dirty recompute by submitting one
// fresh report and recomputing.
func convergenceRounds(m trustnet.Mechanism, n int) int {
	_ = m.Submit(trustnet.Report{TxID: ^uint64(0), Rater: n - 1, Ratee: n - 2, Value: 0.9})
	return m.Compute()
}

// runE8 probes the adversary taxonomy of §2.2: each class at 30% of the
// population, under EigenTrust and PowerTrust — a one-hot class-fraction
// axis × a mechanism axis — plus the whitewash-reset contrast between
// neutral-default (TrustMe) and zero-default (EigenTrust) scores.
func runE8(w io.Writer, p params) error {
	n := p.peers(150)
	rounds := 50
	if p.quick {
		rounds = 25
	}
	classes := []string{"malicious", "traitor", "slanderer", "colluder"}
	oneHot := make([][]float64, len(classes))
	for i := range classes {
		tuple := make([]float64, len(classes))
		tuple[i] = 0.3
		oneHot[i] = tuple
	}
	base := scenario(p, 0, n)
	base.EpochRounds = rounds
	base.Epochs = 1
	res, err := trustnet.NewExperiment(base).
		VaryTuples(classes, oneHot...).
		VaryMechanism(eigenSpec(), trustnet.MechanismSpec{Kind: "powertrust"}).
		Run(context.Background())
	if err != nil {
		return err
	}
	tab := trustnet.NewTable("E8: damage by adversary class at 30% (higher tau / lower bad-rate = more robust)",
		"class", "eigentrust tau", "eigentrust bad", "powertrust tau", "powertrust bad")
	for ci, cls := range classes {
		row := []any{cls}
		for mi := 0; mi < 2; mi++ {
			s := res.At(ci, mi).Runs[0].Summary
			row = append(row, s.Tau, s.RecentBadRate)
		}
		tab.AddRow(row...)
	}
	tab.Render(w)

	// Whitewash contrast: a badly-rated peer resets its identity. This is
	// a hand-fed report script on standalone mechanisms, not a run matrix.
	et, err := trustnet.NewEigenTrust(trustnet.EigenTrustConfig{N: 20, Pretrusted: []int{1, 2}})
	if err != nil {
		return err
	}
	tm, err := trustnet.NewTrustMe(trustnet.TrustMeConfig{N: 20})
	if err != nil {
		return err
	}
	tx := uint64(1)
	for rater := 1; rater < 20; rater++ {
		for k := 0; k < 3; k++ {
			r := trustnet.Report{TxID: tx, Rater: rater, Ratee: 0, Value: 0.05}
			if err := et.Submit(r); err != nil {
				return err
			}
			if err := tm.Submit(r); err != nil {
				return err
			}
			tx++
			// Some good peers also rate each other so peer 0 is not the
			// only scored peer.
			other := trustnet.Report{TxID: tx, Rater: rater, Ratee: (rater % 19) + 1, Value: 0.9}
			if other.Rater != other.Ratee {
				_ = et.Submit(other)
				_ = tm.Submit(other)
			}
			tx++
		}
	}
	et.Compute()
	tm.Compute()
	etBefore, tmBefore := et.Score(0), tm.Score(0)
	et.Whitewash(0)
	tm.Whitewash(0)
	et.Compute()
	tm.Compute()
	wt := trustnet.NewTable("E8b: whitewash laundering (peer 0 resets identity after bad ratings)",
		"mechanism", "score before", "score after reset", "reset gain", "laundered?")
	wt.AddRow("eigentrust (zero-default)", etBefore, et.Score(0), et.Score(0)-etBefore, et.Score(0)-etBefore > 0.1)
	wt.AddRow("trustme (neutral-default)", tmBefore, tm.Score(0), tm.Score(0)-tmBefore, tm.Score(0)-tmBefore > 0.1)
	wt.Render(w)
	fmt.Fprintf(w, "whitewashing launders TrustMe's neutral default back to %.2f while EigenTrust keeps the newcomer at %.2f\n",
		tm.Score(0), et.Score(0))
	return nil
}
