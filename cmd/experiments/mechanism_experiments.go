package main

import (
	"fmt"
	"io"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/reputation"
	"repro/internal/reputation/eigentrust"
	"repro/internal/reputation/powertrust"
	"repro/internal/reputation/trustme"
	"repro/internal/workload"
)

func eigenFactory() core.MechanismFactory {
	return func(n int) (reputation.Mechanism, error) {
		return eigentrust.New(eigentrust.Config{N: n, Pretrusted: []int{0, 1, 2}})
	}
}

// runE6 reproduces Figure 2 (left): the grid over the two settable axes is
// classified into the intersection region "Area A" where all three facet
// satisfactions hold at once; the best tradeoff lives inside it.
func runE6(w io.Writer, p params) error {
	n := p.peers(120)
	grid := 5
	rounds := 30
	if p.quick {
		grid, rounds = 4, 20
	}
	cfg := core.ExploreConfig{
		Base: workload.Config{
			Seed:           p.seed,
			NumPeers:       n,
			Mix:            baseMix(0.3),
			RecomputeEvery: 2,
		},
		Mechanism:  eigenFactory(),
		Rounds:     rounds,
		GridSize:   grid,
		Thresholds: core.Facets{Satisfaction: 0.6, Reputation: 0.6, Privacy: 0.8},
	}
	res, err := core.Explore(cfg)
	if err != nil {
		return err
	}
	tab := metrics.NewTable("E6: (disclosure x trust-gate) grid — Area A membership",
		"disclosure", "gate", "S", "R", "P", "trust", "in Area A")
	thr := cfg.Thresholds
	for _, pt := range res.Points {
		in := pt.Global.Satisfaction >= thr.Satisfaction &&
			pt.Global.Reputation >= thr.Reputation &&
			pt.Global.Privacy >= thr.Privacy
		tab.AddRow(pt.Setting.Disclosure, pt.Setting.TrustGate,
			pt.Global.Satisfaction, pt.Global.Reputation, pt.Global.Privacy, pt.Trust, in)
	}
	tab.Render(w)
	fmt.Fprintf(w, "Area A: %d/%d settings (%.0f%%); best overall trust %.3f at (δ=%.2f, σ=%.2f); best inside A %.3f at (δ=%.2f, σ=%.2f)\n",
		len(res.AreaA), len(res.Points), res.AreaFraction*100,
		res.Best.Trust, res.Best.Setting.Disclosure, res.Best.Setting.TrustGate,
		res.BestInAreaA.Trust, res.BestInAreaA.Setting.Disclosure, res.BestInAreaA.Setting.TrustGate)
	return nil
}

// runE7 compares the paper's cited mechanism space — EigenTrust, TrustMe,
// PowerTrust — plus the no-reputation baseline across malicious fractions:
// the bad-service rate, the mechanism's rank accuracy, convergence rounds,
// and TrustMe's messaging overhead.
func runE7(w io.Writer, p params) error {
	n := p.peers(200)
	rounds := 60
	if p.quick {
		rounds = 30
	}
	fractions := []float64{0, 0.2, 0.4, 0.6, 0.8}
	type mkMech struct {
		name string
		make func() (reputation.Mechanism, error)
	}
	mechs := []mkMech{
		{"none", func() (reputation.Mechanism, error) { return reputation.NewNone(n), nil }},
		{"eigentrust", func() (reputation.Mechanism, error) {
			return eigentrust.New(eigentrust.Config{N: n, Pretrusted: []int{0, 1, 2}})
		}},
		{"powertrust", func() (reputation.Mechanism, error) {
			return powertrust.New(powertrust.Config{N: n})
		}},
		{"trustme", func() (reputation.Mechanism, error) {
			return trustme.New(trustme.Config{N: n})
		}},
	}
	tab := metrics.NewTable(
		fmt.Sprintf("E7: bad-service rate by mechanism and malicious fraction (%d peers, %d rounds)", n, rounds),
		"malicious", "none", "eigentrust", "powertrust", "trustme")
	taus := metrics.NewTable("E7b: rank accuracy (tau) and cost at 40% malicious",
		"mechanism", "tau", "converge-rounds", "extra-messages")
	for _, frac := range fractions {
		row := []any{frac}
		for _, mk := range mechs {
			mech, err := mk.make()
			if err != nil {
				return err
			}
			eng, err := workload.NewEngine(workload.Config{
				Seed:           p.seed,
				NumPeers:       n,
				Mix:            baseMix(frac),
				RecomputeEvery: 2,
			}, mech)
			if err != nil {
				return err
			}
			eng.Run(rounds)
			s := eng.Summarize()
			row = append(row, s.RecentBadRate)
			if frac == 0.4 {
				var msgs int64
				if tm, ok := mech.(*trustme.Mechanism); ok {
					msgs = tm.Messages
				}
				taus.AddRow(mk.name, s.Tau, convergenceRounds(mech, n), msgs)
			}
		}
		tab.AddRow(row...)
	}
	tab.Render(w)
	taus.Render(w)

	// Convergence ablation: PowerTrust's look-ahead random walk vs the
	// plain walk on the same feedback.
	la, err := powertrust.New(powertrust.Config{N: 50, Epsilon: 1e-10})
	if err != nil {
		return err
	}
	plain, err := powertrust.NewPlain(powertrust.Config{N: 50, Epsilon: 1e-10})
	if err != nil {
		return err
	}
	for _, m := range []reputation.Mechanism{la, plain} {
		eng, err := workload.NewEngine(workload.Config{
			Seed: p.seed, NumPeers: 50, Mix: baseMix(0.3), RecomputeEvery: 1000,
		}, m)
		if err != nil {
			return err
		}
		eng.Run(20)
	}
	fmt.Fprintf(w, "PowerTrust LRW convergence: look-ahead %d rounds vs plain %d rounds\n",
		la.Compute(), plain.Compute())
	return nil
}

// convergenceRounds measures a full from-dirty recompute by submitting one
// fresh report and recomputing.
func convergenceRounds(m reputation.Mechanism, n int) int {
	_ = m.Submit(reputation.Report{TxID: ^uint64(0), Rater: n - 1, Ratee: n - 2, Value: 0.9})
	return m.Compute()
}

// runE8 probes the adversary taxonomy of §2.2: each class at 30% of the
// population, under EigenTrust and PowerTrust, plus the whitewash-reset
// contrast between neutral-default (TrustMe) and zero-default (EigenTrust)
// scores.
func runE8(w io.Writer, p params) error {
	n := p.peers(150)
	rounds := 50
	if p.quick {
		rounds = 25
	}
	classes := []adversary.Class{
		adversary.Malicious, adversary.Traitor, adversary.Slanderer, adversary.Colluder,
	}
	tab := metrics.NewTable("E8: damage by adversary class at 30% (higher tau / lower bad-rate = more robust)",
		"class", "eigentrust tau", "eigentrust bad", "powertrust tau", "powertrust bad")
	for _, cls := range classes {
		mix := adversary.Mix{
			Fractions: map[adversary.Class]float64{
				adversary.Honest: 0.7,
				cls:              0.3,
			},
			ForceHonest: []int{0, 1, 2},
		}
		row := []any{cls.String()}
		for _, mechName := range []string{"eigentrust", "powertrust"} {
			var mech reputation.Mechanism
			var err error
			if mechName == "eigentrust" {
				mech, err = eigentrust.New(eigentrust.Config{N: n, Pretrusted: []int{0, 1, 2}})
			} else {
				mech, err = powertrust.New(powertrust.Config{N: n})
			}
			if err != nil {
				return err
			}
			eng, err := workload.NewEngine(workload.Config{
				Seed:           p.seed,
				NumPeers:       n,
				Mix:            mix,
				RecomputeEvery: 2,
			}, mech)
			if err != nil {
				return err
			}
			eng.Run(rounds)
			s := eng.Summarize()
			row = append(row, s.Tau, s.RecentBadRate)
		}
		tab.AddRow(row...)
	}
	tab.Render(w)

	// Whitewash contrast: a badly-rated peer resets its identity.
	et, err := eigentrust.New(eigentrust.Config{N: 20, Pretrusted: []int{1, 2}})
	if err != nil {
		return err
	}
	tm, err := trustme.New(trustme.Config{N: 20})
	if err != nil {
		return err
	}
	tx := uint64(1)
	for rater := 1; rater < 20; rater++ {
		for k := 0; k < 3; k++ {
			r := reputation.Report{TxID: tx, Rater: rater, Ratee: 0, Value: 0.05}
			if err := et.Submit(r); err != nil {
				return err
			}
			if err := tm.Submit(r); err != nil {
				return err
			}
			tx++
			// Some good peers also rate each other so peer 0 is not the
			// only scored peer.
			other := reputation.Report{TxID: tx, Rater: rater, Ratee: (rater % 19) + 1, Value: 0.9}
			if other.Rater != other.Ratee {
				_ = et.Submit(other)
				_ = tm.Submit(other)
			}
			tx++
		}
	}
	et.Compute()
	tm.Compute()
	etBefore, tmBefore := et.Score(0), tm.Score(0)
	et.Whitewash(0)
	tm.Whitewash(0)
	et.Compute()
	tm.Compute()
	wt := metrics.NewTable("E8b: whitewash laundering (peer 0 resets identity after bad ratings)",
		"mechanism", "score before", "score after reset", "reset gain", "laundered?")
	wt.AddRow("eigentrust (zero-default)", etBefore, et.Score(0), et.Score(0)-etBefore, et.Score(0)-etBefore > 0.1)
	wt.AddRow("trustme (neutral-default)", tmBefore, tm.Score(0), tm.Score(0)-tmBefore, tm.Score(0)-tmBefore > 0.1)
	wt.Render(w)
	fmt.Fprintf(w, "whitewashing launders TrustMe's neutral default back to %.2f while EigenTrust keeps the newcomer at %.2f\n",
		tm.Score(0), et.Score(0))
	return nil
}
