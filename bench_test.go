package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/privacy"
	"repro/internal/reputation"
	"repro/internal/reputation/eigentrust"
	"repro/internal/reputation/powertrust"
	"repro/internal/reputation/trustme"
	"repro/internal/sim"
	"repro/internal/social"
	"repro/internal/workload"
	"repro/trustnet"
)

func benchMix(malicious float64) adversary.Mix {
	return adversary.Mix{
		Fractions: map[adversary.Class]float64{
			adversary.Honest:    1 - malicious,
			adversary.Malicious: malicious,
		},
		ForceHonest: []int{0, 1, 2},
	}
}

func mustEigen(b *testing.B, n int) *eigentrust.Mechanism {
	b.Helper()
	m, err := eigentrust.New(eigentrust.Config{N: n, Pretrusted: []int{0, 1, 2}})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkE1Coupling regenerates E1 (Fig. 1): one coupled-feedback epoch
// over 100 peers with 30% malicious.
func BenchmarkE1Coupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dyn, err := core.NewDynamics(core.DynamicsConfig{
			Workload: workload.Config{
				Seed: 1, NumPeers: 100, Mix: benchMix(0.3),
				Disclosure: 0.8, RecomputeEvery: 2,
			},
			Coupled:     true,
			EpochRounds: 8,
		}, mustEigen(b, 100))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := dyn.Epoch(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2IteratedMap regenerates E2: the trust/satisfaction fixed-point
// iteration from 11 starting points.
func BenchmarkE2IteratedMap(b *testing.B) {
	cfg := core.MapConfig{Reputation: 0.8, Privacy: 0.8}
	for i := 0; i < b.N; i++ {
		for k := 0; k <= 10; k++ {
			if _, err := core.RunIteratedMap(float64(k)/10, 40, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE5DisclosureSweep regenerates one point of E5 (Fig. 2 right):
// evaluating a disclosure setting end to end.
func BenchmarkE5DisclosureSweep(b *testing.B) {
	cfg := core.ExploreConfig{
		Base: workload.Config{
			Seed: 1, NumPeers: 100, Mix: benchMix(0.3), RecomputeEvery: 2,
		},
		Mechanism: func(n int) (reputation.Mechanism, error) {
			return eigentrust.New(eigentrust.Config{N: n, Pretrusted: []int{0, 1, 2}})
		},
		Rounds: 20,
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateSetting(cfg, core.Setting{Disclosure: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6AreaA regenerates E6 (Fig. 2 left): a 3x3 grid classification
// (the sweep-backed facade explorer).
func BenchmarkE6AreaA(b *testing.B) {
	cfg := trustnet.ExploreConfig{
		Scenario: trustnet.Scenario{
			Peers: 60, Seed: 1,
			Mix:            trustnet.MixOf(map[string]float64{"malicious": 0.3}, 0, 1, 2),
			Mechanism:      trustnet.MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}},
			RecomputeEvery: 2,
		},
		Rounds:   15,
		GridSize: 3,
	}
	for i := 0; i < b.N; i++ {
		if _, err := trustnet.Explore(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Mechanisms regenerates E7: a file-sharing run per mechanism at
// 30% malicious.
func BenchmarkE7Mechanisms(b *testing.B) {
	const n = 100
	mechs := map[string]func() (reputation.Mechanism, error){
		"none": func() (reputation.Mechanism, error) { return reputation.NewNone(n), nil },
		"eigentrust": func() (reputation.Mechanism, error) {
			return eigentrust.New(eigentrust.Config{N: n, Pretrusted: []int{0, 1, 2}})
		},
		"powertrust": func() (reputation.Mechanism, error) {
			return powertrust.New(powertrust.Config{N: n})
		},
		"trustme": func() (reputation.Mechanism, error) {
			return trustme.New(trustme.Config{N: n})
		},
	}
	for name, mk := range mechs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mech, err := mk()
				if err != nil {
					b.Fatal(err)
				}
				eng, err := workload.NewEngine(workload.Config{
					Seed: 1, NumPeers: n, Mix: benchMix(0.3), RecomputeEvery: 2,
				}, mech)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				eng.Run(20)
			}
		})
	}
}

// BenchmarkE8Adversary regenerates E8: EigenTrust facing each adversary
// class at 30%.
func BenchmarkE8Adversary(b *testing.B) {
	classes := []adversary.Class{
		adversary.Malicious, adversary.Traitor, adversary.Slanderer, adversary.Colluder,
	}
	for _, cls := range classes {
		b.Run(cls.String(), func(b *testing.B) {
			mix := adversary.Mix{
				Fractions:   map[adversary.Class]float64{adversary.Honest: 0.7, cls: 0.3},
				ForceHonest: []int{0, 1, 2},
			}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, err := workload.NewEngine(workload.Config{
					Seed: 1, NumPeers: 80, Mix: mix, RecomputeEvery: 2,
				}, mustEigen(b, 80))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				eng.Run(20)
			}
		})
	}
}

// BenchmarkE9PriServ regenerates E9's workload: policy-checked requests
// against the PriServ-style service.
func BenchmarkE9PriServ(b *testing.B) {
	ring := dht.NewRing(3)
	for i := 0; i < 32; i++ {
		if err := ring.Join(i); err != nil {
			b.Fatal(err)
		}
	}
	ring.Stabilize()
	ledger := privacy.NewLedger()
	s := sim.New()
	svc, err := privacy.NewService(ring, ledger, s)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("item/%d", i)
		sens := social.Sensitivity(i%4 + 1)
		if err := svc.Publish(i, key, []byte("data"), sens, privacy.DefaultPolicy(sens)); err != nil {
			b.Fatal(err)
		}
	}
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("item/%d", rng.Intn(50))
		_, _, _ = svc.Request(rng.Intn(50), key, privacy.Read, privacy.SocialUse, rng.Float64(), rng.Bool(0.5))
	}
}

// BenchmarkE10Optimize regenerates E10: the constrained optimizer on a
// small grid (the sweep-backed facade optimizer).
func BenchmarkE10Optimize(b *testing.B) {
	cfg := trustnet.ExploreConfig{
		Scenario: trustnet.Scenario{
			Peers: 50, Seed: 1,
			Mix:            trustnet.MixOf(map[string]float64{"malicious": 0.3}, 0, 1, 2),
			Mechanism:      trustnet.MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}},
			RecomputeEvery: 2,
		},
		Rounds:   12,
		GridSize: 3,
		Weights:  core.ContextWeights(core.PrivacyCritical),
	}
	for i := 0; i < b.N; i++ {
		if _, err := trustnet.Optimize(context.Background(), cfg, trustnet.Constraints{MinPrivacy: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkDHTLookup(b *testing.B) {
	ring := dht.NewRing(3)
	for i := 0; i < 256; i++ {
		if err := ring.Join(i); err != nil {
			b.Fatal(err)
		}
	}
	ring.Stabilize()
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		if err := ring.Put(keys[i], []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ring.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDHTStabilize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ring := dht.NewRing(3)
		for j := 0; j < 128; j++ {
			if err := ring.Join(j); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		ring.Stabilize()
	}
}

func BenchmarkGossipRound(b *testing.B) {
	s := sim.New()
	net := overlay.NewNetwork(s, sim.NewRNG(1), 512, overlay.Config{})
	ps := overlay.NewPeerSampler(net, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Round()
	}
}

func BenchmarkEigenTrustCompute(b *testing.B) {
	rng := sim.NewRNG(1)
	m := mustEigen(b, 200)
	for k := 0; k < 5000; k++ {
		i, j := rng.Intn(200), rng.Intn(200)
		if i != j {
			_ = m.Submit(reputation.Report{Rater: i, Ratee: j, Value: rng.Float64()})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Submit(reputation.Report{TxID: uint64(i), Rater: 0, Ratee: 1 + i%199, Value: 0.9})
		m.Compute()
	}
}

func BenchmarkPowerTrustCompute(b *testing.B) {
	rng := sim.NewRNG(1)
	m, err := powertrust.New(powertrust.Config{N: 200})
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 5000; k++ {
		i, j := rng.Intn(200), rng.Intn(200)
		if i != j {
			_ = m.Submit(reputation.Report{Rater: i, Ratee: j, Value: rng.Float64()})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Submit(reputation.Report{TxID: uint64(i), Rater: 0, Ratee: 1 + i%199, Value: 0.9})
		m.Compute()
	}
}

func BenchmarkDistributedEigenTrust(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := mustEigen(b, 50)
		rng := sim.NewRNG(1)
		for k := 0; k < 1000; k++ {
			x, y := rng.Intn(50), rng.Intn(50)
			if x != y {
				_ = m.Submit(reputation.Report{Rater: x, Ratee: y, Value: rng.Float64()})
			}
		}
		s := sim.New()
		net := overlay.NewNetwork(s, sim.NewRNG(2), 50, overlay.Config{})
		b.StartTimer()
		if _, err := m.RunDistributed(net, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrustMeSubmit(b *testing.B) {
	m, err := trustme.New(trustme.Config{N: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := reputation.Report{TxID: uint64(i), Rater: i % 63, Ratee: 63, Value: 0.8}
		if r.Rater == r.Ratee {
			continue
		}
		if err := m.Submit(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyEvaluate(b *testing.B) {
	pol := privacy.DefaultPolicy(social.High)
	req := privacy.Request{
		Requester: 1, Owner: 0, Operation: privacy.Read,
		Purpose: privacy.SocialUse, RequesterTrust: 0.9, IsFriend: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pol.Evaluate(req, sim.Time(i))
	}
}

func BenchmarkLedgerExposure(b *testing.B) {
	l := privacy.NewLedger()
	rng := sim.NewRNG(1)
	for k := 0; k < 5000; k++ {
		l.Record(privacy.Disclosure{
			Owner: rng.Intn(50), Item: fmt.Sprintf("item/%d", rng.Intn(200)),
			Sensitivity: social.Sensitivity(rng.Intn(4) + 1),
			Recipient:   rng.Intn(50), Consented: true,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Exposure(i % 50)
	}
}

func BenchmarkCertSealVerify(b *testing.B) {
	key := []byte("tha-key")
	for i := 0; i < b.N; i++ {
		c := crypto.SealCert(key, uint64(i), "peer-1", "peer-2")
		if err := crypto.VerifyCert(key, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarabasiAlbert(b *testing.B) {
	rng := sim.NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = graph.BarabasiAlbert(rng, 1000, 4)
	}
}

func BenchmarkKendallTau(b *testing.B) {
	rng := sim.NewRNG(1)
	x := make([]float64, 300)
	y := make([]float64, 300)
	for i := range x {
		x[i], y[i] = rng.Float64(), rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = metrics.KendallTau(x, y)
	}
}

func BenchmarkWorkloadRound(b *testing.B) {
	eng, err := workload.NewEngine(workload.Config{
		Seed: 1, NumPeers: 200, Mix: benchMix(0.3), RecomputeEvery: 1 << 30,
	}, mustEigen(b, 200))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Round()
	}
}

// BenchmarkAblationCombine contrasts the geometric metric with the
// arithmetic ablation (cost and behaviour are both of interest).
func BenchmarkAblationCombine(b *testing.B) {
	f := core.Facets{Satisfaction: 0.8, Reputation: 0.6, Privacy: 0.9}
	w := core.DefaultWeights()
	b.Run("geometric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Combine(f, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arithmetic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CombineArithmetic(f, w); err != nil {
				b.Fatal(err)
			}
		}
	})
}
