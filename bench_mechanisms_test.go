package repro

import (
	"fmt"
	"math"
	"os"
	"sort"
	"testing"

	"repro/internal/reputation"
	"repro/internal/reputation/eigentrust"
	"repro/internal/reputation/powertrust"
	"repro/internal/sim"
)

// BenchmarkMechanismCompute measures one steady-state mechanism recompute —
// one fresh report submitted, then Compute — across population sizes,
// interaction-graph densities and worker counts, for the sparse CSR kernel
// and (at tractable sizes) the frozen dense [][]float64 reference it
// replaced. CI converts the output into BENCH_mechanisms.json; benchjson
// derives the workers=K speedups and the kernel=sparse-vs-dense speedup
// rows, the headline numbers of the sparse-kernel acceptance bar (≥5× over
// dense at 10k users, ≤1% density).
//
// Heavy cases (50k users; dense baselines beyond 1k users) only run with
// BENCH_MECH_HEAVY=1 so the CI benchmark smoke stays fast; the dedicated
// bench-mechanisms job sets it.
func BenchmarkMechanismCompute(b *testing.B) {
	heavy := os.Getenv("BENCH_MECH_HEAVY") != ""
	type scale struct {
		users     int
		densities []float64
	}
	scales := []scale{
		{users: 1000, densities: []float64{0.001, 0.01}},
		{users: 10000, densities: []float64{0.001, 0.01}},
		// Density scales down with n² so the edge count stays bounded.
		{users: 50000, densities: []float64{0.0002, 0.001}},
	}
	// Warm-vs-cold rows: the same incremental (one dirty row) recompute with
	// the power iteration restarted from the previous fixed point vs from
	// pretrust. The gated ns/op and the advisory iters/op metric should both
	// show warm starts paying only for how far the matrix actually moved.
	warmColdReports := mechBenchReports(10000, 0.001)
	for _, mech := range []string{"eigentrust", "powertrust"} {
		for _, start := range []string{"warm", "cold"} {
			name := fmt.Sprintf("mech=%s/users=10000/density=0.001/kernel=sparse/workers=4/start=%s",
				mech, start)
			b.Run(name, func(b *testing.B) {
				benchWarmCold(b, mech, 10000, 4, start == "cold", warmColdReports)
			})
		}
	}
	for _, sc := range scales {
		if sc.users >= 50000 && !heavy {
			continue
		}
		for _, density := range sc.densities {
			reports := mechBenchReports(sc.users, density)
			for _, mech := range []string{"eigentrust", "powertrust"} {
				for _, workers := range []int{1, 4} {
					name := fmt.Sprintf("mech=%s/users=%d/density=%g/kernel=sparse/workers=%d",
						mech, sc.users, density, workers)
					b.Run(name, func(b *testing.B) {
						benchSparse(b, mech, sc.users, workers, reports)
					})
				}
				// The dense baseline materializes n² float64 rows — 20 GB at
				// 50k users — so it is capped at 10k even in heavy mode (and
				// at 1k without it).
				if sc.users > 10000 || (sc.users > 1000 && !heavy) {
					continue
				}
				name := fmt.Sprintf("mech=%s/users=%d/density=%g/kernel=dense/workers=1",
					mech, sc.users, density)
				b.Run(name, func(b *testing.B) {
					benchDense(b, mech, sc.users, reports)
				})
			}
		}
	}
}

// mechBenchReports generates a deterministic report set with ~density·n²
// edges.
func mechBenchReports(n int, density float64) []reputation.Report {
	rng := sim.NewRNG(17)
	edges := int(density * float64(n) * float64(n))
	reports := make([]reputation.Report, 0, edges)
	for k := 0; k < edges; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		reports = append(reports, reputation.Report{
			TxID: uint64(k), Rater: i, Ratee: j, Value: rng.Float64(),
		})
	}
	return reports
}

func benchSparse(b *testing.B, mech string, n, workers int, reports []reputation.Report) {
	var m reputation.Mechanism
	var err error
	switch mech {
	case "eigentrust":
		m, err = eigentrust.New(eigentrust.Config{N: n})
	case "powertrust":
		m, err = powertrust.New(powertrust.Config{N: n})
	}
	if err != nil {
		b.Fatal(err)
	}
	m.(reputation.ComputeSharder).SetComputeShards(workers)
	for _, r := range reports {
		if err := m.Submit(r); err != nil {
			b.Fatal(err)
		}
	}
	m.Compute() // materialize the CSR; the loop measures the incremental step
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Submit(reputation.Report{Rater: n - 1, Ratee: n - 2, Value: 0.9}); err != nil {
			b.Fatal(err)
		}
		m.Compute()
	}
}

// benchWarmCold measures the steady-state incremental recompute with the
// iteration's starting vector pinned warm (previous fixed point) or cold
// (pretrust / uniform), reporting the mean solver iterations per recompute
// as an advisory metric alongside the gated ns/op.
func benchWarmCold(b *testing.B, mech string, n, workers int, cold bool, reports []reputation.Report) {
	var m reputation.Mechanism
	var err error
	switch mech {
	case "eigentrust":
		m, err = eigentrust.New(eigentrust.Config{N: n, ColdStart: cold})
	case "powertrust":
		m, err = powertrust.New(powertrust.Config{N: n, ColdStart: cold})
	}
	if err != nil {
		b.Fatal(err)
	}
	m.(reputation.ComputeSharder).SetComputeShards(workers)
	for _, r := range reports {
		if err := m.Submit(r); err != nil {
			b.Fatal(err)
		}
	}
	m.Compute() // reach the fixed point; the loop measures small-delta recomputes
	var iters int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Submit(reputation.Report{Rater: n - 1, Ratee: n - 2, Value: 0.9}); err != nil {
			b.Fatal(err)
		}
		iters += m.Compute()
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
}

func benchDense(b *testing.B, mech string, n int, reports []reputation.Report) {
	switch mech {
	case "eigentrust":
		benchDenseEigenTrust(b, n, reports)
	case "powertrust":
		benchDensePowerTrust(b, n, reports)
	}
}

// benchDenseEigenTrust is the frozen pre-kernel EigenTrust Compute: every
// recompute materializes all n normalized rows as dense []float64 and
// iterates over n² entries.
func benchDenseEigenTrust(b *testing.B, n int, reports []reputation.Report) {
	lt := reputation.NewLocalTrust(n)
	for _, r := range reports {
		if err := lt.Add(r); err != nil {
			b.Fatal(err)
		}
	}
	pretrust := reputation.UniformPretrust(n)
	const alpha, epsilon = 0.15, 1e-6
	const maxIter = 200
	compute := func() {
		rows := make([][]float64, n)
		for i := 0; i < n; i++ {
			rows[i] = lt.NormalizedRow(i, pretrust)
		}
		t := append([]float64(nil), pretrust...)
		next := make([]float64, n)
		for iters := 0; iters < maxIter; iters++ {
			for j := range next {
				next[j] = 0
			}
			for i := 0; i < n; i++ {
				ti := t[i]
				if ti == 0 {
					continue
				}
				for j, c := range rows[i] {
					if c != 0 {
						next[j] += c * ti
					}
				}
			}
			diff := 0.0
			for j := 0; j < n; j++ {
				next[j] = (1-alpha)*next[j] + alpha*pretrust[j]
				diff += math.Abs(next[j] - t[j])
			}
			t, next = next, t
			if diff < epsilon {
				break
			}
		}
	}
	compute()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lt.Add(reputation.Report{Rater: n - 1, Ratee: n - 2, Value: 0.9}); err != nil {
			b.Fatal(err)
		}
		compute()
	}
}

// benchDensePowerTrust is the frozen pre-kernel PowerTrust Compute: a dense
// row materialization with uniform fill for silent peers, plus the
// look-ahead walk over n² entries per application.
func benchDensePowerTrust(b *testing.B, n int, reports []reputation.Report) {
	type pair struct {
		sum   float64
		count int
	}
	feedback := make([]map[int]*pair, n)
	add := func(r reputation.Report) {
		if feedback[r.Rater] == nil {
			feedback[r.Rater] = make(map[int]*pair)
		}
		p := feedback[r.Rater][r.Ratee]
		if p == nil {
			p = &pair{}
			feedback[r.Rater][r.Ratee] = p
		}
		p.sum += r.Value
		p.count++
	}
	for _, r := range reports {
		add(r)
	}
	m := n / 20
	if m < 1 {
		m = 1
	}
	const alpha, epsilon = 0.15, 1e-6
	const maxIter = 200
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = 1 / float64(n)
	}
	compute := func() {
		// Election (weighted in-degree bootstrap or current scores).
		rank := make([]float64, n)
		uniform := 1 / float64(n)
		bootstrapped := true
		for _, s := range scores {
			if s > uniform*1.01 || s < uniform*0.99 {
				bootstrapped = false
				break
			}
		}
		if bootstrapped {
			for _, row := range feedback {
				for j, p := range row {
					rank[j] += p.sum / float64(p.count)
				}
			}
		} else {
			copy(rank, scores)
		}
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		sort.Slice(ids, func(a, c int) bool {
			if rank[ids[a]] != rank[ids[c]] {
				return rank[ids[a]] > rank[ids[c]]
			}
			return ids[a] < ids[c]
		})
		jump := make([]float64, n)
		share := 1 / float64(m)
		for _, p := range ids[:m] {
			jump[p] = share
		}
		// Dense rows, uniform fill for silent peers.
		rows := make([][]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			sum := 0.0
			for j, p := range feedback[i] {
				row[j] = p.sum / float64(p.count)
			}
			for _, v := range row {
				sum += v
			}
			if sum == 0 {
				for j := range row {
					row[j] = uniform
				}
			} else {
				for j := range row {
					row[j] /= sum
				}
			}
			rows[i] = row
		}
		applyWalk := func(t, next []float64) {
			for j := range next {
				next[j] = 0
			}
			for i := 0; i < n; i++ {
				ti := t[i]
				if ti == 0 {
					continue
				}
				for j, c := range rows[i] {
					if c != 0 {
						next[j] += c * ti
					}
				}
			}
			for j := 0; j < n; j++ {
				next[j] = (1-alpha)*next[j] + alpha*jump[j]
			}
		}
		t := make([]float64, n)
		for i := range t {
			t[i] = 1 / float64(n)
		}
		next := make([]float64, n)
		mid := make([]float64, n)
		for rounds := 0; rounds < maxIter; rounds++ {
			applyWalk(t, mid)
			applyWalk(mid, next)
			diff := 0.0
			for j := 0; j < n; j++ {
				diff += math.Abs(next[j] - t[j])
			}
			t, next = next, t
			if diff < epsilon {
				break
			}
		}
		copy(scores, t)
	}
	compute()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		add(reputation.Report{Rater: n - 1, Ratee: n - 2, Value: 0.9})
		compute()
	}
}
