// Filesharing: the EigenTrust motivating workload — a P2P file-sharing
// community with 30% malicious peers serving corrupted files. The example
// contrasts the no-reputation baseline with EigenTrust and shows the privacy
// bill the reputation mechanism runs up in the disclosure ledger.
package main

import (
	"fmt"
	"log"

	"repro/trustnet"
)

const (
	peers  = 150
	rounds = 50
)

func runScenario(mech trustnet.MechanismFactory) (*trustnet.Engine, error) {
	eng, err := trustnet.New(
		trustnet.WithPeers(peers),
		trustnet.WithRNGSeed(7),
		trustnet.WithMix(trustnet.Mix{
			Fractions: map[trustnet.Class]float64{
				trustnet.Honest:    0.7,
				trustnet.Malicious: 0.3,
			},
			ForceHonest: []int{0, 1, 2},
		}),
		trustnet.WithReputationMechanism(mech),
		// Spread load as EigenTrust recommends.
		trustnet.WithSelection(trustnet.SelectProportional),
		trustnet.WithRecomputeEvery(2),
	)
	if err != nil {
		return nil, err
	}
	eng.RunRounds(rounds)
	return eng, nil
}

func main() {
	withRep, err := runScenario(trustnet.EigenTrust(trustnet.EigenTrustConfig{
		Pretrusted: []int{0, 1, 2},
	}))
	if err != nil {
		log.Fatal(err)
	}
	without, err := runScenario(trustnet.NoReputation())
	if err != nil {
		log.Fatal(err)
	}

	sRep := withRep.Summary()
	sNone := without.Summary()
	fmt.Println("== corrupted-download rate (last quarter of the run) ==")
	fmt.Printf("no reputation: %.1f%%\n", 100*sNone.RecentBadRate)
	fmt.Printf("eigentrust:    %.1f%%  (%.0fx fewer)\n",
		100*sRep.RecentBadRate, safeRatio(sNone.RecentBadRate, sRep.RecentBadRate))
	fmt.Printf("rank accuracy of scores vs true behaviour (tau): %.3f\n\n", sRep.Tau)

	// The privacy bill: what the reputation layer learned about peers.
	g := withRep.Assess().GlobalFacets()
	fmt.Println("== the privacy cost of that protection ==")
	fmt.Printf("feedback reports disclosed to the mechanism: %d\n", withRep.SharedReports())
	fmt.Printf("ledgered disclosure events: %d\n", withRep.Ledger().Len())
	fmt.Printf("mean privacy facet: %.3f (1.0 = nothing shared)\n", g.Privacy)

	trust, err := trustnet.Combine(g, trustnet.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined trust towards the system: %.3f\n", trust)
	fmt.Println("(rerun with the tradeoff example to see where this setting sits on the frontier)")
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
