// Filesharing: the EigenTrust motivating workload — a P2P file-sharing
// community with 30% malicious peers serving corrupted files. The example
// contrasts the no-reputation baseline with EigenTrust and shows the privacy
// bill the reputation mechanism runs up in the disclosure ledger.
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/reputation"
	"repro/internal/reputation/eigentrust"
	"repro/internal/workload"
)

const (
	peers  = 150
	rounds = 50
)

func runScenario(mech reputation.Mechanism) (*workload.Engine, *privacy.Ledger, error) {
	eng, err := workload.NewEngine(workload.Config{
		Seed:     7,
		NumPeers: peers,
		Mix: adversary.Mix{
			Fractions: map[adversary.Class]float64{
				adversary.Honest:    0.7,
				adversary.Malicious: 0.3,
			},
			ForceHonest: []int{0, 1, 2},
		},
		Selection:      workload.SelectProportional, // spread load as EigenTrust recommends
		RecomputeEvery: 2,
	}, mech)
	if err != nil {
		return nil, nil, err
	}
	ledger := privacy.NewLedger()
	eng.AttachLedger(ledger, 50)
	eng.Run(rounds)
	return eng, ledger, nil
}

func main() {
	et, err := eigentrust.New(eigentrust.Config{N: peers, Pretrusted: []int{0, 1, 2}})
	if err != nil {
		log.Fatal(err)
	}
	withRep, ledger, err := runScenario(et)
	if err != nil {
		log.Fatal(err)
	}
	without, _, err := runScenario(reputation.NewNone(peers))
	if err != nil {
		log.Fatal(err)
	}

	sRep := withRep.Summarize()
	sNone := without.Summarize()
	fmt.Println("== corrupted-download rate (last quarter of the run) ==")
	fmt.Printf("no reputation: %.1f%%\n", 100*sNone.RecentBadRate)
	fmt.Printf("eigentrust:    %.1f%%  (%.0fx fewer)\n",
		100*sRep.RecentBadRate, safeRatio(sNone.RecentBadRate, sRep.RecentBadRate))
	fmt.Printf("rank accuracy of scores vs true behaviour (tau): %.3f\n\n", sRep.Tau)

	// The privacy bill: what the reputation layer learned about peers.
	assess := core.Assess(withRep)
	g := assess.GlobalFacets()
	fmt.Println("== the privacy cost of that protection ==")
	fmt.Printf("feedback reports disclosed to the mechanism: %d\n", withRep.Gatherer().Gathered)
	fmt.Printf("ledgered disclosure events: %d\n", ledger.Len())
	fmt.Printf("mean privacy facet: %.3f (1.0 = nothing shared)\n", g.Privacy)

	trust, err := core.Combine(g, core.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined trust towards the system: %.3f\n", trust)
	fmt.Println("(rerun with the tradeoff example to see where this setting sits on the frontier)")
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
