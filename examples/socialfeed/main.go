// Socialfeed: a decentralized social network where profile attributes are
// published through the PriServ-style privacy service with P3P-like
// policies. Friends with enough reputation-established trust can read a
// member's posts and contact details; strangers, low-trust peers and
// commercial crawlers are denied by the matching policy clause; every grant
// is ledgered and the OECD audit closes the loop.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/trustnet"
)

func main() {
	const members = 40
	s := trustnet.NewSim()
	rng := trustnet.NewRNG(2026)

	// Substrate: the privacy service over a replicated DHT of the members'
	// machines, and a small-world friendship graph.
	svc, ledger, err := trustnet.NewPrivacyService(members, 3, s)
	if err != nil {
		log.Fatal(err)
	}
	friends := trustnet.WattsStrogatzGraph(rng, members, 6, 0.1)

	// Every member publishes three items with sensitivity-derived
	// policies: a public post, a friends-only email, a high-sensitivity
	// medical note.
	type item struct {
		suffix string
		sens   trustnet.Sensitivity
	}
	items := []item{
		{"post", trustnet.Public},
		{"email", trustnet.MediumSensitivity},
		{"medical", trustnet.HighSensitivity},
	}
	for m := 0; m < members; m++ {
		profile := trustnet.StandardProfile(m)
		for _, it := range items {
			key := fmt.Sprintf("user/%d/%s", m, it.suffix)
			val := fmt.Sprintf("%s of %s", it.suffix, profile.Attributes[0].Value)
			if err := svc.Publish(m, key, []byte(val), it.sens, trustnet.DefaultPolicy(it.sens)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Reputation-established trust per member (stand-in for a mechanism
	// run; see the quickstart/filesharing examples for the real thing).
	trust := make([]float64, members)
	for m := range trust {
		trust[m] = 0.3 + 0.6*rng.Float64()
	}

	// A browsing session: members read each other's items.
	grants, denials := 0, 0
	for k := 0; k < 600; k++ {
		reader := rng.Intn(members)
		owner := rng.Intn(members)
		it := items[rng.Intn(len(items))]
		key := fmt.Sprintf("user/%d/%s", owner, it.suffix)
		isFriend := friends.HasEdge(reader, owner)
		if _, _, err := svc.Request(reader, key, trustnet.Read, trustnet.SocialUse, trust[reader], isFriend); err == nil {
			grants++
		} else {
			denials++
		}
		s.After(1, func() {})
		if err := s.Run(0); err != nil {
			log.Fatal(err)
		}
	}

	// A commercial crawler tries to harvest emails for any purpose it can.
	crawlerDenied := 0
	for m := 0; m < members; m++ {
		key := fmt.Sprintf("user/%d/email", m)
		if _, _, err := svc.Request(members-1, key, trustnet.Read, trustnet.CommercialUse, 0.99, false); err != nil {
			crawlerDenied++
		}
	}

	fmt.Printf("browsing session: %d grants, %d denials\n", grants, denials)
	fmt.Printf("crawler harvesting emails for commercial use: denied %d/%d times\n", crawlerDenied, members)
	fmt.Println("\ndenials by policy clause:")
	reasons := make([]trustnet.DenyReason, 0, len(svc.Denials))
	for reason := range svc.Denials {
		reasons = append(reasons, reason)
	}
	sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
	for _, reason := range reasons {
		fmt.Printf("  %-25s %d\n", reason, svc.Denials[reason])
	}

	// Each member can see exactly what about them went where.
	someone := 3
	fmt.Printf("\nmember %d's disclosure log (%d events), exposure %.2f, privacy facet %.3f\n",
		someone, len(ledger.EventsFor(someone)), ledger.Exposure(someone), ledger.PrivacyFacet(someone, 10))

	// Run retention expiries, then audit.
	if err := s.Run(s.Now() + 2000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOECD audit:")
	for _, r := range trustnet.AuditPrivacy(svc, ledger, s.Now()) {
		fmt.Printf("  %-26s pass=%v (%s)\n", r.Principle, r.Pass, r.Detail)
	}
}
