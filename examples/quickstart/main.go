// Quickstart: build a small decentralized social network, run interactions
// under a reputation mechanism, and read out the three facets — satisfaction,
// reputation power, privacy — and the resulting trust towards the system.
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/reputation/eigentrust"
	"repro/internal/workload"
)

func main() {
	const peers = 100

	// 1. A reputation mechanism: EigenTrust with three pre-trusted
	// founders.
	mech, err := eigentrust.New(eigentrust.Config{N: peers, Pretrusted: []int{0, 1, 2}})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A population: 70% honest, 30% malicious, on a Barabási–Albert
	// friendship graph; peers share 80% of their feedback with the
	// reputation layer.
	cfg := core.DynamicsConfig{
		Workload: workload.Config{
			Seed:     42,
			NumPeers: peers,
			Mix: adversary.Mix{
				Fractions: map[adversary.Class]float64{
					adversary.Honest:    0.7,
					adversary.Malicious: 0.3,
				},
				ForceHonest: []int{0, 1, 2},
			},
			Disclosure:     0.8,
			RecomputeEvery: 2,
		},
		Coupled:     true, // the paper's §3 feedback loops
		EpochRounds: 8,
	}

	// 3. Run the coupled dynamics: facets are measured each epoch, trust
	// is updated, and trust feeds back into disclosure and honesty.
	dyn, err := core.NewDynamics(cfg, mech)
	if err != nil {
		log.Fatal(err)
	}
	history, err := dyn.Run(6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  trust   satisfaction  reputation  privacy")
	for _, e := range history {
		fmt.Printf("%5d  %.4f  %.4f        %.4f      %.4f\n",
			e.Epoch, e.Trust, e.Satisfaction, e.Reputation, e.Privacy)
	}

	tm := dyn.TrustModel()
	fmt.Printf("\nglobal trust towards the system: %.4f\n", tm.GlobalTrust())
	fmt.Printf("system globally trusted (median user >= 0.5): %v\n", tm.SystemTrusted(0.5, 0.5))

	// 4. The same facets under a different applicative context weigh
	// differently (§4).
	assess := core.Assess(dyn.Engine())
	g := assess.GlobalFacets()
	for _, ctx := range []core.Context{core.Balanced, core.PrivacyCritical, core.PerformanceCritical} {
		t, err := core.Combine(g, core.ContextWeights(ctx))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trust under %-20s context: %.4f\n", ctx, t)
	}
}
