// Quickstart: build a small decentralized social network, run interactions
// under a reputation mechanism, and read out the three facets — satisfaction,
// reputation power, privacy — and the resulting trust towards the system.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/trustnet"
)

func main() {
	const peers = 100

	// One engine call wires the whole scenario: a population that is 70%
	// honest and 30% malicious on a Barabási–Albert friendship graph,
	// EigenTrust with three pre-trusted founders, peers sharing 80% of
	// their feedback, and the paper's §3 feedback loops enabled.
	eng, err := trustnet.New(
		trustnet.WithPeers(peers),
		trustnet.WithRNGSeed(42),
		trustnet.WithMix(trustnet.Mix{
			Fractions: map[trustnet.Class]float64{
				trustnet.Honest:    0.7,
				trustnet.Malicious: 0.3,
			},
			ForceHonest: []int{0, 1, 2},
		}),
		trustnet.WithReputationMechanism(trustnet.EigenTrust(trustnet.EigenTrustConfig{
			Pretrusted: []int{0, 1, 2},
		})),
		trustnet.WithPrivacyPolicy(trustnet.PrivacyPolicy{Disclosure: 0.8}),
		trustnet.WithRecomputeEvery(2),
		trustnet.WithCoupling(true),
		trustnet.WithEpochRounds(8),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Run the coupled dynamics: facets are measured each epoch, trust is
	// updated, and trust feeds back into disclosure and honesty.
	history, err := eng.Run(context.Background(), 6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  trust   satisfaction  reputation  privacy")
	for _, e := range history {
		fmt.Printf("%5d  %.4f  %.4f        %.4f      %.4f\n",
			e.Epoch, e.Trust, e.Satisfaction, e.Reputation, e.Privacy)
	}

	fmt.Printf("\nglobal trust towards the system: %.4f\n", eng.GlobalTrust())
	fmt.Printf("system globally trusted (median user >= 0.5): %v\n", eng.SystemTrusted(0.5, 0.5))

	// The same facets under a different applicative context weigh
	// differently (§4).
	g := eng.Assess().GlobalFacets()
	for _, ctx := range []trustnet.AppContext{trustnet.Balanced, trustnet.PrivacyCritical, trustnet.PerformanceCritical} {
		t, err := trustnet.Combine(g, trustnet.ContextWeights(ctx))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trust under %-20s context: %.4f\n", ctx, t)
	}
}
