// Quickstart: build a small decentralized social network, run interactions
// under a reputation mechanism, and read out the three facets — satisfaction,
// reputation power, privacy — and the resulting trust towards the system.
//
// The whole setup is the registered "quickstart" Scenario — a declarative,
// JSON-serializable spec — so the same run is also available as
// `trustsim -scenario quickstart`, and sweeping it only takes
// trustnet.NewExperiment(sc).Vary(...).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"repro/trustnet"
)

func main() {
	// One registered spec wires the whole scenario: a population that is
	// 70% honest and 30% malicious on a Barabási–Albert friendship graph,
	// EigenTrust with three pre-trusted founders, peers sharing 80% of
	// their feedback, and the paper's §3 feedback loops enabled.
	sc := trustnet.MustScenario("quickstart")

	// Show the spec itself: scenarios are data, and this JSON round-trips
	// back into an identical run.
	spec, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running scenario %q:\n%s\n\n", sc.Name, spec)

	// Run the coupled dynamics: facets are measured each epoch, trust is
	// updated, and trust feeds back into disclosure and honesty.
	eng, history, err := sc.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  trust   satisfaction  reputation  privacy")
	for _, e := range history {
		fmt.Printf("%5d  %.4f  %.4f        %.4f      %.4f\n",
			e.Epoch, e.Trust, e.Satisfaction, e.Reputation, e.Privacy)
	}

	fmt.Printf("\nglobal trust towards the system: %.4f\n", eng.GlobalTrust())
	fmt.Printf("system globally trusted (median user >= 0.5): %v\n", eng.SystemTrusted(0.5, 0.5))

	// The same facets under a different applicative context weigh
	// differently (§4).
	g := eng.Assess().GlobalFacets()
	for _, ctx := range []trustnet.AppContext{trustnet.Balanced, trustnet.PrivacyCritical, trustnet.PerformanceCritical} {
		t, err := trustnet.Combine(g, trustnet.ContextWeights(ctx))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trust under %-20s context: %.4f\n", ctx, t)
	}

	// Replications are a one-liner on the same spec: five seeds, and the
	// cross-seed mean ± stddev of the final epoch's trust.
	res, err := trustnet.NewExperiment(sc).Seeds(5).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	final := res.Cells[0].Final
	fmt.Printf("\nacross 5 seeds: final trust %.4f ± %.4f\n", final.Trust.Mean, final.Trust.Std)
}
