// Tradeoff: sweep the quantity of shared information and print the
// Figure-2-right curves — privacy satisfaction falls, reputation power
// rises, and the same global satisfaction is reachable at different
// settings. Then ask the optimizer for the best setting under two different
// applicative contexts.
//
// The disclosure sweep is a declarative Experiment over the registered
// "tradeoff" Scenario — no hand-rolled run loop; the same spec is runnable
// as `trustsim -scenario tradeoff`.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/trustnet"
)

func main() {
	base := trustnet.MustScenario("tradeoff")

	disclosures := make([]float64, 0, 9)
	for i := 0; i <= 8; i++ {
		disclosures = append(disclosures, float64(i)/8)
	}
	res, err := trustnet.NewExperiment(base).
		Vary("disclosure", disclosures...).
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	var priv, rep, sat trustnet.Series
	priv.Name, rep.Name, sat.Name = "privacy", "reputation-power", "global-satisfaction"
	for _, cell := range res.Cells {
		d := cell.Coord.Get("disclosure")
		priv.Add(d, cell.Privacy.Mean)
		rep.Add(d, cell.Reputation.Mean)
		sat.Add(d, cell.Satisfaction.Mean)
	}
	trustnet.RenderSeries(os.Stdout, "sharing more helps reputation, costs privacy (Fig. 2 right)",
		"disclosure", &priv, &rep, &sat)

	// The optimizer finds different best settings for different contexts;
	// under the hood each Optimize is a grid sweep plus hill-climb batches
	// over the same scenario.
	explore := base
	explore.Epochs = 0
	explore.EpochRounds = 0
	explore.Privacy = nil // the explorer owns the (disclosure, gate) axes
	for _, ctx := range []trustnet.AppContext{trustnet.PrivacyCritical, trustnet.PerformanceCritical} {
		cfg := trustnet.ExploreConfig{
			Scenario: explore,
			Rounds:   30,
			GridSize: 4,
			Weights:  trustnet.ContextWeights(ctx),
		}
		pt, err := trustnet.Optimize(context.Background(), cfg, trustnet.Constraints{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s context: best setting disclosure=%.2f gate=%.2f (trust %.3f, S=%.2f R=%.2f P=%.2f)\n",
			ctx, pt.Setting.Disclosure, pt.Setting.TrustGate, pt.Trust,
			pt.Global.Satisfaction, pt.Global.Reputation, pt.Global.Privacy)
	}
}
