// Tradeoff: sweep the quantity of shared information and print the
// Figure-2-right curves — privacy satisfaction falls, reputation power
// rises, and the same global satisfaction is reachable at different
// settings. Then ask the optimizer for the best setting under two different
// applicative contexts.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/reputation"
	"repro/internal/reputation/eigentrust"
	"repro/internal/workload"
)

func main() {
	cfg := core.ExploreConfig{
		Base: workload.Config{
			Seed:     11,
			NumPeers: 100,
			Mix: adversary.Mix{
				Fractions: map[adversary.Class]float64{
					adversary.Honest:    0.7,
					adversary.Malicious: 0.3,
				},
				ForceHonest: []int{0, 1, 2},
			},
			RecomputeEvery: 2,
		},
		Mechanism: func(n int) (reputation.Mechanism, error) {
			return eigentrust.New(eigentrust.Config{N: n, Pretrusted: []int{0, 1, 2}})
		},
		Rounds: 30,
	}

	var priv, rep, sat metrics.Series
	priv.Name, rep.Name, sat.Name = "privacy", "reputation-power", "global-satisfaction"
	for i := 0; i <= 8; i++ {
		d := float64(i) / 8
		pt, err := core.EvaluateSetting(cfg, core.Setting{Disclosure: d})
		if err != nil {
			log.Fatal(err)
		}
		priv.Add(d, pt.Global.Privacy)
		rep.Add(d, pt.Global.Reputation)
		sat.Add(d, pt.Global.Satisfaction)
	}
	metrics.RenderSeries(os.Stdout, "sharing more helps reputation, costs privacy (Fig. 2 right)",
		"disclosure", &priv, &rep, &sat)

	// The optimizer finds different best settings for different contexts.
	cfg.GridSize = 4
	for _, ctx := range []core.Context{core.PrivacyCritical, core.PerformanceCritical} {
		c := cfg
		c.Weights = core.ContextWeights(ctx)
		pt, err := core.Optimize(c, core.Constraints{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s context: best setting disclosure=%.2f gate=%.2f (trust %.3f, S=%.2f R=%.2f P=%.2f)\n",
			ctx, pt.Setting.Disclosure, pt.Setting.TrustGate, pt.Trust,
			pt.Global.Satisfaction, pt.Global.Reputation, pt.Global.Privacy)
	}
}
