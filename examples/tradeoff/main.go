// Tradeoff: sweep the quantity of shared information and print the
// Figure-2-right curves — privacy satisfaction falls, reputation power
// rises, and the same global satisfaction is reachable at different
// settings. Then ask the optimizer for the best setting under two different
// applicative contexts.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/trustnet"
)

func main() {
	cfg := trustnet.ExploreConfig{
		Scenario: []trustnet.Option{
			trustnet.WithPeers(100),
			trustnet.WithRNGSeed(11),
			trustnet.WithMix(trustnet.Mix{
				Fractions: map[trustnet.Class]float64{
					trustnet.Honest:    0.7,
					trustnet.Malicious: 0.3,
				},
				ForceHonest: []int{0, 1, 2},
			}),
			trustnet.WithReputationMechanism(trustnet.EigenTrust(trustnet.EigenTrustConfig{
				Pretrusted: []int{0, 1, 2},
			})),
			trustnet.WithRecomputeEvery(2),
		},
		Rounds: 30,
	}

	var priv, rep, sat trustnet.Series
	priv.Name, rep.Name, sat.Name = "privacy", "reputation-power", "global-satisfaction"
	for i := 0; i <= 8; i++ {
		d := float64(i) / 8
		pt, err := trustnet.EvaluateSetting(cfg, trustnet.Setting{Disclosure: d})
		if err != nil {
			log.Fatal(err)
		}
		priv.Add(d, pt.Global.Privacy)
		rep.Add(d, pt.Global.Reputation)
		sat.Add(d, pt.Global.Satisfaction)
	}
	trustnet.RenderSeries(os.Stdout, "sharing more helps reputation, costs privacy (Fig. 2 right)",
		"disclosure", &priv, &rep, &sat)

	// The optimizer finds different best settings for different contexts.
	cfg.GridSize = 4
	for _, ctx := range []trustnet.AppContext{trustnet.PrivacyCritical, trustnet.PerformanceCritical} {
		c := cfg
		c.Weights = trustnet.ContextWeights(ctx)
		pt, err := trustnet.Optimize(context.Background(), c, trustnet.Constraints{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s context: best setting disclosure=%.2f gate=%.2f (trust %.3f, S=%.2f R=%.2f P=%.2f)\n",
			ctx, pt.Setting.Disclosure, pt.Setting.TrustGate, pt.Trust,
			pt.Global.Satisfaction, pt.Global.Reputation, pt.Global.Privacy)
	}
}
