// Churnstorm: a decentralized network under heavy membership churn with
// whitewashing adversaries. Shows (a) the gossip peer-sampling overlay
// repairing itself through churn, and (b) why identity cost matters:
// whitewashers launder TrustMe's neutral-default scores but gain nothing
// against EigenTrust's zero-default.
package main

import (
	"fmt"
	"log"

	"repro/trustnet"
)

const peers = 100

func main() {
	s := trustnet.NewSim()
	net := trustnet.NewOverlayNetwork(s, trustnet.NewRNG(7), peers,
		trustnet.OverlayConfig{LatencyMin: 1, LatencyMax: 3})
	sampler := trustnet.NewPeerSampler(net, 8)

	// Heavy churn: every 20 ticks, 10% of live nodes leave; leavers rejoin
	// with probability 0.5, and half of the rejoiners whitewash (fresh id).
	whitewashed := []trustnet.NodeID{}
	churner, err := trustnet.StartChurn(net, trustnet.ChurnConfig{
		Period:        20,
		LeaveProb:     0.10,
		RejoinProb:    0.5,
		WhitewashProb: 0.5,
		NewIdentity: func(old, fresh trustnet.NodeID) trustnet.OverlayHandler {
			whitewashed = append(whitewashed, fresh)
			// A fresh identity bootstraps into the gossip overlay through
			// whatever live peers it can find.
			seeds := net.AliveIDs()
			if len(seeds) > 8 {
				seeds = seeds[:8]
			}
			sampler.Bootstrap(fresh, seeds)
			return func(m trustnet.OverlayMessage) {}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run 500 ticks of churn, shuffling the peer-sampling views as we go.
	for tick := 0; tick < 25; tick++ {
		if err := s.Run(s.Now() + 20); err != nil {
			log.Fatal(err)
		}
		sampler.Round()
	}
	churner.Stop()

	alive := net.AliveIDs()
	fmt.Printf("after 500 ticks of churn: %d/%d original slots alive, %d leaves, %d rejoins, %d whitewashes\n",
		countOriginal(alive), peers, churner.Leaves, churner.Rejoins, churner.Whitewashes)

	// The sampler's views stay usable: every live node can still find a
	// live peer.
	stranded := 0
	for _, id := range alive {
		if sampler.RandomPeer(id) == -1 {
			stranded++
		}
	}
	fmt.Printf("gossip overlay health: %d/%d live nodes stranded without live peers\n", stranded, len(alive))

	// Identity economics: a badly-behaved peer tries to whitewash its way
	// out of a bad reputation under both score models.
	et, err := trustnet.NewEigenTrust(trustnet.EigenTrustConfig{N: 30, Pretrusted: []int{1, 2}})
	if err != nil {
		log.Fatal(err)
	}
	tm, err := trustnet.NewTrustMe(trustnet.TrustMeConfig{N: 30})
	if err != nil {
		log.Fatal(err)
	}
	tx := uint64(1)
	for rater := 1; rater < 30; rater++ {
		r := trustnet.Report{TxID: tx, Rater: rater, Ratee: 0, Value: 0.05}
		if err := et.Submit(r); err != nil {
			log.Fatal(err)
		}
		if err := tm.Submit(r); err != nil {
			log.Fatal(err)
		}
		tx++
	}
	et.Compute()
	tm.Compute()
	fmt.Printf("\npeer 0 after 29 bad ratings:   eigentrust=%.2f  trustme=%.2f\n", et.Score(0), tm.Score(0))
	// Both mechanisms implement the Whitewasher seam of the facade.
	for _, m := range []trustnet.Whitewasher{et, tm} {
		m.Whitewash(0)
	}
	et.Compute()
	tm.Compute()
	fmt.Printf("peer 0 after whitewashing:     eigentrust=%.2f  trustme=%.2f\n", et.Score(0), tm.Score(0))
	fmt.Println("\nzero-default scores make whitewashing pointless; neutral defaults reward it —")
	fmt.Println("the identity-cost argument of the paper's adversary discussion (§2.2).")
}

func countOriginal(ids []trustnet.NodeID) int {
	n := 0
	for _, id := range ids {
		if int(id) < peers {
			n++
		}
	}
	return n
}
