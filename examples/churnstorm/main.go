// Churnstorm: a trust scenario under heavy membership churn with
// whitewashing adversaries, scripted as data. The storm — leave waves,
// rejoin waves, a whitewash wave — is a declarative intervention Schedule
// applied by a streaming Session at epoch boundaries, not a hand-written
// driving loop. Running the same schedule under EigenTrust and TrustMe
// shows why identity cost matters: whitewashers launder TrustMe's
// neutral-default scores but gain nothing against EigenTrust's
// zero-default (§2.2's identity-cost argument).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/trustnet"
)

const (
	peers  = 100
	epochs = 12
)

func main() {
	fmt.Printf("churn storm over %d peers, %d epochs: honest-leave@3, adversary-leave@5, whitewash@7, rejoin@9\n\n",
		peers, epochs)

	for _, mech := range []struct {
		name    string
		factory trustnet.MechanismFactory
	}{
		{"eigentrust", trustnet.EigenTrust(trustnet.EigenTrustConfig{Pretrusted: []int{0, 1, 2}})},
		{"trustme", trustnet.TrustMe(trustnet.TrustMeConfig{})},
	} {
		scores, adversaries := runStorm(mech.factory)
		fmt.Printf("%-11s mean adversary score after whitewash wave: %.3f\n\n", mech.name, mean(scores, adversaries))
	}

	fmt.Println("zero-default scores make whitewashing pointless; neutral defaults reward it —")
	fmt.Println("the identity-cost argument of the paper's adversary discussion (§2.2).")
}

// runStorm drives one mechanism through the scripted churn storm on a
// streaming session, printing the live trajectory. It returns the final
// mechanism scores and the adversary cohort (identical across mechanisms:
// class assignment depends only on the shared seed).
func runStorm(factory trustnet.MechanismFactory) (scores []float64, adversaries []int) {
	eng, err := trustnet.New(
		trustnet.WithPeers(peers),
		trustnet.WithRNGSeed(42),
		trustnet.WithMix(trustnet.Mix{
			Fractions: map[trustnet.Class]float64{
				trustnet.Honest:    0.8,
				trustnet.Malicious: 0.2,
			},
			ForceHonest: []int{0, 1, 2},
		}),
		trustnet.WithReputationMechanism(factory),
		trustnet.WithCoupling(true),
		trustnet.WithEpochRounds(6),
		trustnet.WithRecomputeEvery(2),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Cohorts from the ground-truth assignment: the malicious peers will
	// whitewash; a slice of honest peers rides out the storm offline.
	var honest []int
	for u, c := range eng.Classes() {
		switch {
		case c == trustnet.Malicious:
			adversaries = append(adversaries, u)
		case len(honest) < 20 && u > 2: // spare the pre-trusted founders
			honest = append(honest, u)
		}
	}

	// The storm as data: an epoch-indexed script of churn waves.
	storm := trustnet.Schedule{}.
		At(3, trustnet.LeaveWave{Users: honest}).          // honest peers drop out
		At(5, trustnet.LeaveWave{Users: adversaries}).     // the rated-down adversaries bail...
		At(7, trustnet.WhitewashWave{Users: adversaries}). // ...and rejoin under fresh identities
		At(9, trustnet.JoinWave{Users: honest})            // the honest cohort comes back

	// Stream the epochs; the observer sees each one as it completes, and
	// the schedule fires at the boundaries — no driving loop to hand-write.
	session, err := eng.Session(context.Background(),
		trustnet.WithMaxEpochs(epochs),
		trustnet.WithSchedule(storm),
		trustnet.OnEpoch(func(st trustnet.EpochStats) {
			fmt.Printf("  [%s] epoch %2d: trust=%.3f bad-rate=%.3f honesty=%.3f\n",
				eng.Mechanism().Name(), st.Epoch, st.Trust, st.BadRate, st.Honesty)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, err := range session.Epochs() {
		if err != nil {
			log.Fatal(err)
		}
	}
	return eng.Mechanism().Scores(), adversaries
}

func mean(scores []float64, users []int) float64 {
	sum := 0.0
	for _, u := range users {
		sum += scores[u]
	}
	return sum / float64(len(users))
}
