package repro

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/trustnet"
)

// benchServingOpts is the serving benchmark's scenario: a mid-sized coupled
// population on EigenTrust, the mechanism the served view rebuilds at every
// epoch boundary.
func benchServingOpts(users, shards int) []trustnet.Option {
	return []trustnet.Option{
		trustnet.WithPeers(users),
		trustnet.WithRNGSeed(9),
		trustnet.WithMix(trustnet.Mix{
			Fractions:   map[trustnet.Class]float64{trustnet.Honest: 0.7, trustnet.Malicious: 0.3},
			ForceHonest: []int{0, 1, 2},
		}),
		trustnet.WithReputationMechanism(trustnet.EigenTrust(trustnet.EigenTrustConfig{Pretrusted: []int{0, 1, 2}})),
		trustnet.WithPrivacyPolicy(trustnet.PrivacyPolicy{Disclosure: 0.8}),
		trustnet.WithCoupling(true),
		trustnet.WithEpochRounds(5),
		trustnet.WithRecomputeEvery(2),
		trustnet.WithShards(shards),
	}
}

// BenchmarkServing measures the serving layer under contention: b.N read
// queries (scores, rank, top-K, epoch stats) from 8 workers against a live
// server whose epoch loop is advancing continuously underneath. The headline
// metrics are queries/sec and the p50/p99 query latencies — CI publishes
// them as BENCH_serving.json and benchdiff gates regressions.
func BenchmarkServing(b *testing.B) {
	const users = 200
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("users=%d/shards=%d", users, shards), func(b *testing.B) {
			eng, err := trustnet.New(benchServingOpts(users, shards)...)
			if err != nil {
				b.Fatal(err)
			}
			// A short but nonzero epoch pacing: epochs stream underneath the
			// queries (the contention being measured) without the loop
			// monopolizing small CPU counts, which would benchmark the
			// scheduler's mood instead of the serving path.
			srv, err := serve.New(serve.Config{Engine: eng, EpochInterval: 5 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if err := srv.Start(ctx); err != nil {
				b.Fatal(err)
			}

			b.ResetTimer()
			res, err := serve.RunLoad(ctx, ts.Client(), ts.URL, serve.LoadOptions{
				Concurrency: 8,
				Requests:    b.N,
				Users:       users,
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if res.Errors > 0 {
				b.Fatalf("%d failed queries", res.Errors)
			}
			b.ReportMetric(res.QPS, "qps")
			b.ReportMetric(float64(res.P50), "p50-ns")
			b.ReportMetric(float64(res.P99), "p99-ns")
		})
	}
}
