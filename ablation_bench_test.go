package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// pre-trusted set size, the DHT replication factor, the gossip view size,
// and the anonymity-protection level. Each sub-benchmark is a design point;
// comparing ns/op and the printed quality metrics shows the trade.

import (
	"fmt"
	"testing"

	"repro/internal/dht"
	"repro/internal/overlay"
	"repro/internal/reputation"
	"repro/internal/reputation/anonrep"
	"repro/internal/reputation/eigentrust"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkAblationPretrustSize sweeps EigenTrust's pre-trusted set size:
// larger sets damp collusion harder but concentrate load.
func BenchmarkAblationPretrustSize(b *testing.B) {
	for _, k := range []int{1, 3, 8} {
		b.Run(fmt.Sprintf("pretrusted-%d", k), func(b *testing.B) {
			pre := make([]int, k)
			for i := range pre {
				pre[i] = i
			}
			var lastTau float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mech, err := eigentrust.New(eigentrust.Config{N: 80, Pretrusted: pre})
				if err != nil {
					b.Fatal(err)
				}
				mix := benchMix(0.3)
				mix.ForceHonest = pre
				eng, err := workload.NewEngine(workload.Config{
					Seed: 1, NumPeers: 80, Mix: mix, RecomputeEvery: 2,
				}, mech)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				eng.Run(20)
				lastTau = eng.Summarize().Tau
			}
			b.ReportMetric(lastTau, "tau")
		})
	}
}

// BenchmarkAblationDHTReplicas sweeps the replication factor: higher k
// costs writes but survives more failures.
func BenchmarkAblationDHTReplicas(b *testing.B) {
	for _, k := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("replicas-%d", k), func(b *testing.B) {
			ring := dht.NewRing(k)
			for i := 0; i < 128; i++ {
				if err := ring.Join(i); err != nil {
					b.Fatal(err)
				}
			}
			ring.Stabilize()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := fmt.Sprintf("key-%d", i%1024)
				if err := ring.Put(key, []byte("v")); err != nil {
					b.Fatal(err)
				}
				if _, err := ring.Get(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGossipView sweeps the peer-sampling view size: bigger
// views mix faster per round but cost more per shuffle.
func BenchmarkAblationGossipView(b *testing.B) {
	for _, v := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("view-%d", v), func(b *testing.B) {
			s := sim.New()
			net := overlay.NewNetwork(s, sim.NewRNG(1), 256, overlay.Config{})
			ps := overlay.NewPeerSampler(net, v)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ps.Round()
			}
		})
	}
}

// BenchmarkAblationAnonNoise sweeps the anonymous-reputation protection
// level; the tau metric shows the accuracy cost (E11's trade as a bench).
func BenchmarkAblationAnonNoise(b *testing.B) {
	for _, noise := range []float64{0, 0.05, 0.2} {
		b.Run(fmt.Sprintf("noise-%.2f", noise), func(b *testing.B) {
			var lastTau float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mech, err := anonrep.New(anonrep.Config{N: 80, Noise: noise, Granularity: 0.1, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				eng, err := workload.NewEngine(workload.Config{
					Seed: 1, NumPeers: 80, Mix: benchMix(0.3), RecomputeEvery: 2,
				}, mech)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for c := 0; c < 4; c++ {
					eng.Run(5)
					mech.NextEpoch()
				}
				lastTau = eng.Summarize().Tau
			}
			b.ReportMetric(lastTau, "tau")
		})
	}
}

// BenchmarkAblationSelection contrasts the two response policies of the
// "response" block: deterministic best vs load-spreading proportional.
func BenchmarkAblationSelection(b *testing.B) {
	for _, sel := range []struct {
		name string
		s    workload.Selection
	}{
		{"best", workload.SelectBest},
		{"proportional", workload.SelectProportional},
	} {
		b.Run(sel.name, func(b *testing.B) {
			var lastBad float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mech, err := eigentrust.New(eigentrust.Config{N: 80, Pretrusted: []int{0, 1}})
				if err != nil {
					b.Fatal(err)
				}
				eng, err := workload.NewEngine(workload.Config{
					Seed: 1, NumPeers: 80, Mix: benchMix(0.3),
					Selection: sel.s, RecomputeEvery: 2,
				}, mech)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				eng.Run(20)
				lastBad = eng.Summarize().RecentBadRate
			}
			b.ReportMetric(lastBad, "bad-rate")
		})
	}
}

var _ = reputation.SatThreshold // keep the import for documentation symmetry
