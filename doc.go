// Package repro is a from-scratch Go reproduction of "Trust your Social
// Network According to Satisfaction, Reputation and Privacy" (Busnel,
// Serrano-Alvarado, Lamarre — 3rd ACM Workshop on Reliability, Availability
// and Security, 2010).
//
// The library lives under internal/: the paper's contribution (the
// correlated three-facet trust model, its §3 coupling dynamics, and the §4
// tradeoff explorer) is in internal/core, built on from-scratch substrates —
// a discrete-event simulator, graph generators, a P2P overlay with gossip
// and churn, a Chord-style DHT, the three cited reputation mechanisms
// (EigenTrust, TrustMe, PowerTrust), the Quiané-Ruiz satisfaction model and
// a P3P/OECD/PriServ privacy stack.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// Benchmarks in bench_test.go regenerate every figure-level result
// (go test -bench=. -benchmem).
package repro
