// Package repro is a from-scratch Go reproduction of "Trust your Social
// Network According to Satisfaction, Reputation and Privacy" (Busnel,
// Serrano-Alvarado, Lamarre — 3rd ACM Workshop on Reliability, Availability
// and Security, 2010).
//
// The public entry point is the trustnet package: an Engine built with
// functional options over the paper's correlated three-facet trust model
// (satisfaction §2.1, reputation power §2.2, privacy §2.3), with
// single-shot (Assess), batch/concurrent (AssessAll) and coupled-dynamics
// (Run) assessment paths, pluggable reputation mechanisms, and the §4
// tradeoff explorer. Programs outside this repository should import only
// repro/trustnet.
//
// The implementation lives under internal/: the paper's contribution (the
// correlated three-facet trust model, its §3 coupling dynamics, and the §4
// tradeoff explorer) is in internal/core, built on from-scratch substrates —
// a discrete-event simulator, graph generators, a P2P overlay with gossip
// and churn, a Chord-style DHT, the three cited reputation mechanisms
// (EigenTrust, TrustMe, PowerTrust), the Quiané-Ruiz satisfaction model and
// a P3P/OECD/PriServ privacy stack.
//
// See README.md for the quickstart and tour, and DESIGN.md for the system
// inventory, the facade's design rationale, and the experiment index.
// Benchmarks in bench_test.go regenerate every figure-level result
// (go test -bench=. -benchmem).
package repro
