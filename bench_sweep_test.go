package repro

// BenchmarkSweep tracks the Experiment/Sweep orchestrator's cost: a
// (disclosure × gate) grid with seed replications, at 1 worker vs 4
// workers. CI publishes the ns/op and the 1-vs-4 speedup in
// BENCH_sweep.json next to the epoch/session benches; the sweep's
// determinism contract (equal seeds ⇒ identical SweepResult at any
// parallelism) makes the worker count a pure throughput knob, so the
// speedup row is the headline number.

import (
	"context"
	"fmt"
	"testing"

	"repro/trustnet"
)

func BenchmarkSweep(b *testing.B) {
	base := trustnet.Scenario{
		Peers:          100,
		Seed:           1,
		Mix:            trustnet.MixOf(map[string]float64{"malicious": 0.3}, 0, 1, 2),
		Mechanism:      trustnet.MechanismSpec{Kind: "eigentrust", Pretrusted: []int{0, 1, 2}},
		EpochRounds:    8,
		Epochs:         1,
		RecomputeEvery: 2,
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("grid=3x3/reps=2/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := trustnet.NewExperiment(base).
					Vary("disclosure", 0, 0.5, 1).
					Vary("gate", 0, 0.2, 0.4).
					Seeds(2).
					Workers(workers).
					Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Cells) != 9 {
					b.Fatalf("cells = %d", len(res.Cells))
				}
			}
		})
	}
}
